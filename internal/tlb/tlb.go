// Package tlb models translation lookaside buffers and the cost of Sv39
// page-table walks.
//
// TLB behaviour matters for the paper's transposition experiment: the naive
// column-major walk of an 8192×8192 double matrix strides 64 KiB between
// consecutive accesses, touching a new 4 KiB page every time — the D1's
// 10-entry D-uTLB and 128-entry jTLB (and the U74's 40-entry DTLB / 512-entry
// L2 TLB, §3.1) thrash long before the caches do. Blocking restores page
// locality, which is part of why it wins on every device.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package tlb

import (
	"fmt"

	"riscvmem/internal/units"
)

// Config describes one TLB level.
type Config struct {
	Name    string
	Entries int
	// Ways is the associativity; Ways == Entries models a fully associative
	// TLB (the D1's uTLB), Ways == 1 a direct-mapped one (the U74's L2 TLB).
	Ways      int
	PageShift uint // log2(page size); 12 for the 4 KiB pages used throughout
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.Ways > c.Entries {
		return fmt.Errorf("tlb %s: bad entries/ways %d/%d", c.Name, c.Entries, c.Ways)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb %s: entries %d not divisible by ways %d", c.Name, c.Entries, c.Ways)
	}
	if sets := int64(c.Entries / c.Ways); !units.IsPow2(sets) {
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, sets)
	}
	if c.PageShift == 0 {
		return fmt.Errorf("tlb %s: zero page shift", c.Name)
	}
	return nil
}

// Stats counts lookups.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns total lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

type entry struct {
	vpn   uint64
	used  uint64
	valid bool
}

// memoEntries sizes the direct-mapped lookup memo; a power of two.
const memoEntries = 64

// wayMemo remembers which way last held a page so repeated lookups of hot
// pages skip the associative scan — decisive for the fully-associative
// uTLBs (up to 40 ways) that sit on every simulated access. Purely an
// accelerator: each use re-validates against the authoritative entry, so
// hit/miss outcomes, recency and statistics are unchanged.
type wayMemo struct {
	key uint64 // vpn + 1; 0 means empty
	way int32
}

// TLB is one translation cache level, LRU-replaced within each set.
type TLB struct {
	cfg Config
	// entries holds all sets contiguously (set s occupies
	// entries[s*ways : (s+1)*ways]) — one indirection per lookup.
	entries []entry
	ways    int
	setMask uint64
	clock   uint64

	// Repeat-hit batcher: consecutive lookups of the same page — the
	// dominant pattern, since a kernel touches a page's 64 lines back to
	// back — are only counted here, and folded into the clock, the entry's
	// recency stamp and the statistics on the next different-page
	// operation. The folded state is exactly what the unbatched sequence
	// produces: clock advances by one per lookup, the entry's stamp takes
	// the final clock value, and nothing else observes the interim states.
	lastVpn uint64 // vpn+1 of the last hit; 0 = none
	lastIdx int32  // index into entries of that hit
	pending uint64 // deferred repeat hits

	memo  [memoEntries]wayMemo
	stats Stats
}

// Stats returns the accumulated lookup counters.
func (t *TLB) Stats() Stats {
	t.flush()
	return t.stats
}

// flush folds deferred repeat hits into the clock, recency and statistics.
func (t *TLB) flush() {
	if t.pending > 0 {
		t.clock += t.pending
		t.entries[t.lastIdx].used = t.clock
		t.stats.Hits += t.pending
		t.pending = 0
	}
}

// New builds a TLB from cfg.
func New(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Entries / cfg.Ways
	return &TLB{
		cfg:     cfg,
		entries: make([]entry, cfg.Entries),
		ways:    cfg.Ways,
		setMask: uint64(nsets - 1),
	}, nil
}

// MustNew is New but panics on error; for validated presets.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the construction configuration.
func (t *TLB) Config() Config { return t.cfg }

// Lookup reports whether the page containing vaddr is cached, updating
// recency and statistics. It does not insert on miss; composition across
// levels is explicit via Insert.
func (t *TLB) Lookup(vaddr uint64) bool {
	vpn := vaddr >> t.cfg.PageShift
	if t.lastVpn == vpn+1 {
		t.pending++ // repeat hit: fold lazily (see flush)
		return true
	}
	return t.lookupCold(vpn)
}

// Repeat records n additional lookups of the page the immediately preceding
// Lookup hit — the bulk entry point for line runs that stay within one page
// (hier.AccessLines). It is exactly equivalent to calling Lookup n more
// times with the same address: each such call only increments the deferred
// repeat counter (see flush), so the bulk form charges the batcher once.
// Callers must have just observed Lookup return true for the page.
func (t *TLB) Repeat(n uint64) {
	t.pending += n
}

// lookupCold handles a lookup of a page other than the immediately
// preceding one: fold any deferred hits, then walk memo and set.
func (t *TLB) lookupCold(vpn uint64) bool {
	t.flush()
	t.clock++
	m := &t.memo[vpn&(memoEntries-1)]
	base := int(vpn&t.setMask) * t.ways
	if m.key == vpn+1 {
		if e := &t.entries[base+int(m.way)]; e.valid && e.vpn == vpn {
			e.used = t.clock
			t.stats.Hits++
			t.lastVpn, t.lastIdx = vpn+1, int32(base+int(m.way))
			return true
		}
	}
	set := t.entries[base : base+t.ways]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].used = t.clock
			m.key, m.way = vpn+1, int32(i)
			t.stats.Hits++
			t.lastVpn, t.lastIdx = vpn+1, int32(base+i)
			return true
		}
	}
	t.stats.Misses++
	t.lastVpn = 0
	return false
}

// Insert caches the translation for the page containing vaddr, evicting the
// LRU entry of its set if needed.
func (t *TLB) Insert(vaddr uint64) {
	vpn := vaddr >> t.cfg.PageShift
	// Inserting may evict the batcher's entry (and needs fresh recency
	// stamps for its LRU choice): fold and invalidate it first.
	t.flush()
	t.lastVpn = 0
	base := int(vpn&t.setMask) * t.ways
	set := t.entries[base : base+t.ways]
	t.clock++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].used = t.clock // refresh
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = entry{vpn: vpn, used: t.clock, valid: true}
	t.memo[vpn&(memoEntries-1)] = wayMemo{key: vpn + 1, way: int32(victim)}
}

// Reset clears entries and statistics.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.clock = 0
	t.memo = [memoEntries]wayMemo{}
	t.lastVpn, t.pending = 0, 0
	t.stats = Stats{}
}

// Walker charges the cost of resolving a translation miss. Sv39 uses a
// three-level table; we charge a fixed per-level cost calibrated to the
// device (page-table entries mostly hit in L2/DRAM; modelling the walk as a
// latency constant keeps the simulator first-order while preserving the
// "column walks thrash the TLB" effect the paper's blocking results rely on).
type Walker struct {
	Levels         int     // 3 for Sv39
	CyclesPerLevel float64 // per-level memory cost
	Walks          uint64  // statistic
}

// Walk returns the cycle cost of one full table walk.
func (w *Walker) Walk() float64 {
	w.Walks++
	return float64(w.Levels) * w.CyclesPerLevel
}
