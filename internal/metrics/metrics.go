// Package metrics implements the paper's §3.3 performance metrics: speedup
// over the naive implementation and the relative memory-bandwidth
// utilization that makes low-power and server devices comparable.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package metrics

import "riscvmem/internal/units"

// Speedup returns how many times faster opt is than base (both in seconds).
// Zero or negative inputs yield 0.
func Speedup(baseSeconds, optSeconds float64) float64 {
	if baseSeconds <= 0 || optSeconds <= 0 {
		return 0
	}
	return baseSeconds / optSeconds
}

// Utilization is the §3.3 metric: the ratio of the bytes that *must* cross
// the DRAM↔CPU boundary to the bytes the STREAM-measured bandwidth could
// have moved in the same time. The result is dimensionless in [0,1]; values
// near one mean the algorithm spends its whole runtime moving mandatory
// traffic at full achievable bandwidth.
func Utilization(mandatoryBytes int64, seconds float64, streamBW units.BytesPerSec) float64 {
	if mandatoryBytes <= 0 || seconds <= 0 || streamBW <= 0 {
		return 0
	}
	u := float64(mandatoryBytes) / seconds / float64(streamBW)
	if u > 1 {
		u = 1 // the metric is defined on [0,1]; overshoot means the
		//       denominator (achieved STREAM) underestimates the ceiling
	}
	return u
}
