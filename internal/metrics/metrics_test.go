package metrics

import (
	"testing"

	"riscvmem/internal/units"
)

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 2); got != 5 {
		t.Errorf("Speedup(10,2) = %v", got)
	}
	if got := Speedup(0, 2); got != 0 {
		t.Errorf("Speedup(0,2) = %v", got)
	}
	if got := Speedup(2, 0); got != 0 {
		t.Errorf("Speedup(2,0) = %v", got)
	}
	if got := Speedup(3, 6); got != 0.5 {
		t.Errorf("slowdown = %v, want 0.5", got)
	}
}

func TestUtilization(t *testing.T) {
	// 16 GB mandatory over 2 s at 16 GB/s achievable = 0.5.
	if got := Utilization(16e9, 2, units.BytesPerSec(16e9)); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	// Clamped to 1.
	if got := Utilization(32e9, 1, units.BytesPerSec(16e9)); got != 1 {
		t.Errorf("Utilization = %v, want 1 (clamped)", got)
	}
	// Degenerate inputs.
	for _, u := range []float64{
		Utilization(0, 1, 1), Utilization(1, 0, 1), Utilization(1, 1, 0),
	} {
		if u != 0 {
			t.Errorf("degenerate utilization = %v", u)
		}
	}
}
