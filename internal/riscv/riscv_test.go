package riscv

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"riscvmem/internal/machine"
	"riscvmem/internal/sim"
)

// run assembles src, loads it into an emulator on a Mango Pi-class machine
// with 1 MiB of data memory, and executes it.
func run(t *testing.T, src string) *Emulator {
	t.Helper()
	e := mustEmu(t, src, 1<<20)
	if _, err := e.Run(1 << 22); err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func mustEmu(t *testing.T, src string, mem int) *Emulator {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := sim.MustNew(machine.MangoPiD1())
	e, err := NewEmulator(p, m, mem)
	if err != nil {
		t.Fatalf("emulator: %v", err)
	}
	return e
}

func TestEncodeDecodeRoundTripAllSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range specs {
		s := s
		for trial := 0; trial < 32; trial++ {
			in := Instr{Spec: &s, Rd: rng.Intn(32), Rs1: rng.Intn(32), Rs2: rng.Intn(32), Rs3: rng.Intn(32)}
			switch s.Format {
			case FormatI:
				if s.Opcode == opOPIMM && (s.Funct3 == 0b001 || s.Funct3 == 0b101) {
					in.Imm = int64(rng.Intn(64))
				} else {
					in.Imm = int64(rng.Intn(4096) - 2048)
				}
			case FormatS:
				in.Imm = int64(rng.Intn(4096) - 2048)
			case FormatB:
				in.Imm = int64(rng.Intn(4096)-2048) * 2
			case FormatU:
				in.Imm = int64(rng.Intn(1 << 20))
			case FormatJ:
				in.Imm = int64(rng.Intn(1<<20)-1<<19) * 2
			case FormatVVI:
				in.Imm = int64(rng.Intn(4)) << 3
			}
			word, err := in.Encode()
			if err != nil {
				t.Fatalf("%s: encode: %v", s.Name, err)
			}
			got, err := Decode(word)
			if err != nil {
				t.Fatalf("%s: decode(%#08x): %v", s.Name, word, err)
			}
			if got.Spec.Name != s.Name {
				t.Fatalf("%s decoded as %s", s.Name, got.Spec.Name)
			}
			if got.Imm != in.Imm {
				t.Fatalf("%s: imm %d -> %d", s.Name, in.Imm, got.Imm)
			}
			// Register fields participate unless the encoding fixes them.
			if _, fixed := fixedRS2[s.Name]; !fixed &&
				(s.Format == FormatR || s.Format == FormatVV || s.Format == FormatVF) {
				if got.Rd != in.Rd || got.Rs1 != in.Rs1 || got.Rs2 != in.Rs2 {
					t.Fatalf("%s: regs (%d,%d,%d) -> (%d,%d,%d)", s.Name,
						in.Rd, in.Rs1, in.Rs2, got.Rd, got.Rs1, got.Rs2)
				}
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(0xffffffff); err == nil {
		t.Error("all-ones decoded")
	}
	if _, err := Decode(0); err == nil {
		t.Error("all-zeros decoded")
	}
}

// Property: random valid instruction words survive decode→encode→decode.
func TestPropertyDecodeEncodeFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := specs[rng.Intn(len(specs))]
		in := Instr{Spec: &s, Rd: rng.Intn(32), Rs1: rng.Intn(32), Rs2: rng.Intn(32), Rs3: rng.Intn(32)}
		if s.Format == FormatB {
			in.Imm = 4
		}
		if s.Format == FormatJ {
			in.Imm = 8
		}
		w1, err := in.Encode()
		if err != nil {
			return true // invalid immediates are allowed to fail
		}
		d, err := Decode(w1)
		if err != nil {
			return false
		}
		w2, err := d.Encode()
		if err != nil {
			return false
		}
		return w1 == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"bad mnemonic":    "frobnicate x1, x2",
		"bad register":    "add q1, x2, x3",
		"operand count":   "add x1, x2",
		"bad label":       "beq x1, x2, nowhere",
		"dup label":       "a:\na:\naddi x0, x0, 0",
		"imm overflow":    "addi x1, x0, 99999",
		"li overflow":     "li x1, 0x123456789ab",
		"bad vsetvli sew": "vsetvli t0, a0, e128, m1",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error", name)
		}
	}
}

func TestArithmeticProgram(t *testing.T) {
	e := run(t, `
		li   a0, 40
		li   a1, 2
		add  a2, a0, a1      # 42
		sub  a3, a0, a1      # 38
		mul  a4, a0, a1      # 80
		div  a5, a0, a1      # 20
		rem  a6, a0, a1      # 0
		slli a7, a1, 4       # 32
		ecall
	`)
	want := map[int]uint64{12: 42, 13: 38, 14: 80, 15: 20, 16: 0, 17: 32}
	for r, v := range want {
		if e.X[r] != v {
			t.Errorf("x%d = %d, want %d", r, e.X[r], v)
		}
	}
}

func TestLiLargeAndNegative(t *testing.T) {
	e := run(t, `
		li a0, 123456789
		li a1, -9876
		li a2, -1
		ecall
	`)
	if e.X[10] != 123456789 {
		t.Errorf("a0 = %d", e.X[10])
	}
	if int64(e.X[11]) != -9876 {
		t.Errorf("a1 = %d", int64(e.X[11]))
	}
	if int64(e.X[12]) != -1 {
		t.Errorf("a2 = %d", int64(e.X[12]))
	}
}

func TestFibonacciLoop(t *testing.T) {
	e := run(t, `
		li   t0, 10       # n
		li   a0, 0
		li   a1, 1
	loop:
		beqz t0, done
		add  t1, a0, a1
		mv   a0, a1
		mv   a1, t1
		addi t0, t0, -1
		j    loop
	done:
		ecall
	`)
	if e.X[10] != 55 {
		t.Fatalf("fib(10) = %d, want 55", e.X[10])
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	e := mustEmu(t, `
		# a0 = base (set by host), store then reload several widths
		li   t0, 0x7b        # 123
		sd   t0, 0(a0)
		ld   t1, 0(a0)
		sw   t0, 8(a0)
		lw   t2, 8(a0)
		sh   t0, 16(a0)
		lhu  t3, 16(a0)
		sb   t0, 24(a0)
		lbu  t4, 24(a0)
		ecall
	`, 1<<16)
	e.X[10] = e.MemBase
	if _, err := e.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{6, 7, 28, 29} {
		if e.X[r] != 0x7b {
			t.Errorf("x%d = %#x, want 0x7b", r, e.X[r])
		}
	}
}

func TestSignExtensionLoads(t *testing.T) {
	e := mustEmu(t, `
		li  t0, -1
		sb  t0, 0(a0)
		lb  t1, 0(a0)      # -1
		lbu t2, 0(a0)      # 255
		sw  t0, 8(a0)
		lw  t3, 8(a0)      # -1
		lwu t4, 8(a0)      # 2^32-1
		ecall
	`, 1<<16)
	e.X[10] = e.MemBase
	if _, err := e.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	if int64(e.X[6]) != -1 || e.X[7] != 255 {
		t.Errorf("lb/lbu = %d/%d", int64(e.X[6]), e.X[7])
	}
	if int64(e.X[28]) != -1 || e.X[29] != 1<<32-1 {
		t.Errorf("lw/lwu = %d/%d", int64(e.X[28]), e.X[29])
	}
}

func TestFloatProgram(t *testing.T) {
	e := mustEmu(t, `
		li       t0, 3
		fcvt.d.l fa0, t0
		li       t1, 4
		fcvt.d.l fa1, t1
		fmul.d   fa2, fa0, fa0   # 9
		fmadd.d  fa3, fa1, fa1, fa2  # 25
		fdiv.d   fa4, fa3, fa1   # 6.25
		fsd      fa3, 0(a0)
		fld      fa5, 0(a0)
		flt.d    t2, fa0, fa1    # 1
		ecall
	`, 1<<16)
	e.X[10] = e.MemBase
	if _, err := e.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	if e.F[12] != 9 || e.F[13] != 25 || e.F[14] != 6.25 || e.F[15] != 25 {
		t.Errorf("fa2..fa5 = %v %v %v %v", e.F[12], e.F[13], e.F[14], e.F[15])
	}
	if e.X[7] != 1 {
		t.Errorf("flt.d = %d", e.X[7])
	}
}

func TestMemoryBoundsFault(t *testing.T) {
	e := mustEmu(t, `
		li t0, 0x10
		ld t1, 0(t0)    # far below the data segment
		ecall
	`, 1<<12)
	if _, err := e.Run(100); err == nil {
		t.Fatal("out-of-bounds load did not fault")
	}
}

func TestInstructionBudget(t *testing.T) {
	e := mustEmu(t, "spin: j spin", 1<<12)
	if _, err := e.Run(1000); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("infinite loop not caught: %v", err)
	}
}

// daxpySrc computes y[i] += a*x[i] over n doubles, scalar version.
const daxpyScalar = `
	# a0=x base, a1=y base, a2=n, fa0=a
loop:
	beqz    a2, done
	fld     fa1, 0(a0)
	fld     fa2, 0(a1)
	fmadd.d fa2, fa0, fa1, fa2
	fsd     fa2, 0(a1)
	addi    a0, a0, 8
	addi    a1, a1, 8
	addi    a2, a2, -1
	j       loop
done:
	ecall
`

// daxpyVector is the RVV version (strip-mined by vsetvli).
const daxpyVector = `
	# a0=x base, a1=y base, a2=n, fa0=a
loop:
	beqz      a2, done
	vsetvli   t0, a2, e64, m1
	vle64.v   v1, (a0)
	vle64.v   v2, (a1)
	vfmacc.vf v2, fa0, v1
	vse64.v   v2, (a1)
	slli      t1, t0, 3
	add       a0, a0, t1
	add       a1, a1, t1
	sub       a2, a2, t0
	j         loop
done:
	ecall
`

func setupDaxpy(t *testing.T, src string, n int) (*Emulator, []float64, []float64) {
	t.Helper()
	e := mustEmu(t, src, 1<<20)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 0.5
		y[i] = float64(n - i)
	}
	xBase := e.MemBase
	yBase := e.MemBase + uint64(n*8)
	if err := e.WriteF64(xBase, x); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteF64(yBase, y); err != nil {
		t.Fatal(err)
	}
	e.X[10], e.X[11], e.X[12] = xBase, yBase, uint64(n)
	e.F[10] = 2.5
	return e, x, y
}

func TestDaxpyScalarCorrect(t *testing.T) {
	const n = 77
	e, x, y := setupDaxpy(t, daxpyScalar, n)
	if _, err := e.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadF64(e.MemBase+uint64(n*8), n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := y[i] + 2.5*x[i]
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestDaxpyVectorMatchesScalar(t *testing.T) {
	const n = 77 // odd: exercises the vsetvli tail
	es, _, _ := setupDaxpy(t, daxpyScalar, n)
	if _, err := es.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	ev, _, _ := setupDaxpy(t, daxpyVector, n)
	if _, err := ev.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	sres, err := es.ReadF64(es.MemBase+uint64(n*8), n)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := ev.ReadF64(ev.MemBase+uint64(n*8), n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sres {
		if sres[i] != vres[i] {
			t.Fatalf("y[%d]: scalar %v vs vector %v", i, sres[i], vres[i])
		}
	}
	if ev.Executed >= es.Executed {
		t.Fatalf("vector executed %d instructions, scalar %d — vectorization lost",
			ev.Executed, es.Executed)
	}
}

func TestVectorFasterThanScalar(t *testing.T) {
	const n = 4096
	es, _, _ := setupDaxpy(t, daxpyScalar, n)
	sres, err := es.Run(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	ev, _, _ := setupDaxpy(t, daxpyVector, n)
	vres, err := ev.Run(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	if vres.Cycles >= sres.Cycles {
		t.Fatalf("RVV daxpy (%v cycles) not faster than scalar (%v)", vres.Cycles, sres.Cycles)
	}
}

func TestVsetvliStripMining(t *testing.T) {
	e := run(t, `
		li      a0, 5
		vsetvli t0, a0, e64, m1   # VLMAX=2 at VLEN=128 → t0=2
		li      a1, 1
		vsetvli t1, a1, e64, m1   # t1=1
		li      a2, 100
		vsetvli t2, a2, e32, m1   # VLMAX=4 at e32 → t2=4
		ecall
	`)
	if e.X[5] != 2 || e.X[6] != 1 || e.X[7] != 4 {
		t.Fatalf("vsetvli results = %d, %d, %d; want 2, 1, 4", e.X[5], e.X[6], e.X[7])
	}
}

func TestVectorOpBeforeVsetvliFaults(t *testing.T) {
	e := mustEmu(t, `
		vfadd.vv v1, v2, v3
		ecall
	`, 1<<12)
	if _, err := e.Run(10); err == nil {
		t.Fatal("vector op before vsetvli did not fault")
	}
}

func TestLaAndDataAccess(t *testing.T) {
	// la resolves a code label; here we just verify the address arithmetic
	// by loading the label's own first instruction word... instead, check
	// la yields the label address exactly.
	p, err := Assemble(`
		la  a0, target
		ecall
	target:
		addi x0, x0, 0
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.MustNew(machine.MangoPiD1())
	e, err := NewEmulator(p, m, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if want := p.Labels["target"]; e.X[10] != want {
		t.Fatalf("la = %#x, want %#x", e.X[10], want)
	}
}

func TestBranchVariants(t *testing.T) {
	e := run(t, `
		li   t0, 5
		li   t1, -3
		li   a0, 0
		blt  t1, t0, L1     # signed: taken
		li   a0, 99
	L1:
		bltu t1, t0, L2     # unsigned: -3 is huge, NOT taken
		addi a0, a0, 1
	L2:
		bge  t0, t1, L3     # taken
		li   a0, 99
	L3:
		ecall
	`)
	if e.X[10] != 1 {
		t.Fatalf("a0 = %d, want 1", e.X[10])
	}
}

func TestProgramCounterOutOfRange(t *testing.T) {
	// Falling off the end (no ecall) must fault, not wander.
	e := mustEmu(t, "addi x1, x0, 1", 1<<12)
	if _, err := e.Run(10); err == nil {
		t.Fatal("fall-through did not fault")
	}
}
