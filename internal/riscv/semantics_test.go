package riscv

import (
	"math"
	"testing"
)

// Spec-mandated edge semantics of the M extension and the W-suffix ops.

func TestDivisionByZeroSemantics(t *testing.T) {
	e := run(t, `
		li   t0, 42
		li   t1, 0
		div  a0, t0, t1   # quotient of /0 is -1 (all ones)
		divu a1, t0, t1   # unsigned: 2^64-1
		rem  a2, t0, t1   # remainder of /0 is the dividend
		remu a3, t0, t1
		ecall
	`)
	if int64(e.X[10]) != -1 {
		t.Errorf("div/0 = %d, want -1", int64(e.X[10]))
	}
	if e.X[11] != ^uint64(0) {
		t.Errorf("divu/0 = %#x", e.X[11])
	}
	if e.X[12] != 42 || e.X[13] != 42 {
		t.Errorf("rem/0 = %d, remu/0 = %d; want 42, 42", e.X[12], e.X[13])
	}
}

func TestSignedDivisionOverflow(t *testing.T) {
	// MinInt64 / -1 overflows: quotient = MinInt64, remainder = 0.
	e := mustEmu(t, `
		li  t1, -1
		div a0, t0, t1
		rem a1, t0, t1
		ecall
	`, 1<<12)
	minInt64 := int64(math.MinInt64)
	e.X[5] = uint64(minInt64) // t0 seeded by host
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if int64(e.X[10]) != math.MinInt64 {
		t.Errorf("overflow quotient = %d", int64(e.X[10]))
	}
	if e.X[11] != 0 {
		t.Errorf("overflow remainder = %d", e.X[11])
	}
}

func TestMulh(t *testing.T) {
	e := mustEmu(t, `
		mulh  a0, t0, t1
		mulhu a1, t0, t1
		ecall
	`, 1<<12)
	e.X[5] = ^uint64(2) // t0 = -3 as two's complement
	e.X[6] = 5          // t1
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	// -3 * 5 = -15: signed high word is -1; unsigned high word of
	// (2^64-3)*5 = 5*2^64 - 15 → high = 4.
	if int64(e.X[10]) != -1 {
		t.Errorf("mulh = %d, want -1", int64(e.X[10]))
	}
	if e.X[11] != 4 {
		t.Errorf("mulhu = %d, want 4", e.X[11])
	}
}

func TestWSuffixWrapAndSignExtend(t *testing.T) {
	e := run(t, `
		li    t0, 0x7fffffff
		addiw a0, t0, 1       # wraps to -2^31, sign-extended
		li    t1, 1
		addw  a1, t0, t1
		subw  a2, t0, t0      # 0
		li    t2, 0x10000
		mulw  a3, t2, t2      # 2^32 wraps to 0
		ecall
	`)
	if int64(e.X[10]) != math.MinInt32 {
		t.Errorf("addiw wrap = %d, want %d", int64(e.X[10]), math.MinInt32)
	}
	if int64(e.X[11]) != math.MinInt32 {
		t.Errorf("addw wrap = %d", int64(e.X[11]))
	}
	if e.X[12] != 0 || e.X[13] != 0 {
		t.Errorf("subw/mulw = %d/%d, want 0/0", e.X[12], e.X[13])
	}
}

func TestShiftSemantics(t *testing.T) {
	e := run(t, `
		li   t0, -16
		srai a0, t0, 2     # arithmetic: -4
		srli a1, t0, 60    # logical: high bits come in as 0
		li   t1, 3
		sll  a2, t1, t1    # 24
		sra  a3, t0, t1    # -2
		ecall
	`)
	if int64(e.X[10]) != -4 {
		t.Errorf("srai = %d", int64(e.X[10]))
	}
	if e.X[11] != 15 {
		t.Errorf("srli = %d, want 15", e.X[11])
	}
	if e.X[12] != 24 {
		t.Errorf("sll = %d", e.X[12])
	}
	if int64(e.X[13]) != -2 {
		t.Errorf("sra = %d", int64(e.X[13]))
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	e := run(t, `
		li   t0, 7
		addi x0, t0, 5    # write to x0 is discarded
		add  a0, x0, x0
		ecall
	`)
	if e.X[0] != 0 || e.X[10] != 0 {
		t.Errorf("x0 = %d, a0 = %d", e.X[0], e.X[10])
	}
}

func TestFloatMinMaxSignInjection(t *testing.T) {
	e := mustEmu(t, `
		fmin.d  fa0, fs0, fs1
		fmax.d  fa1, fs0, fs1
		fsgnj.d fa2, fs0, fs1   # magnitude of fs0, sign of fs1
		fmv.d   fa3, fs0        # pseudo: fsgnj.d fa3, fs0, fs0
		ecall
	`, 1<<12)
	e.F[8] = 2.5   // fs0
	e.F[9] = -7.25 // fs1
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.F[10] != -7.25 || e.F[11] != 2.5 {
		t.Errorf("fmin/fmax = %v/%v", e.F[10], e.F[11])
	}
	if e.F[12] != -2.5 {
		t.Errorf("fsgnj.d = %v, want -2.5", e.F[12])
	}
	if e.F[13] != 2.5 {
		t.Errorf("fmv.d = %v", e.F[13])
	}
}

func TestVector32BitLanes(t *testing.T) {
	// e32: 4 lanes at VLEN=128; float32 arithmetic end to end.
	e := mustEmu(t, `
		li      t0, 4
		vsetvli t1, t0, e32, m1
		vle32.v v1, (a0)
		vfadd.vv v2, v1, v1   # doubles each lane
		vse32.v v2, (a1)
		ecall
	`, 1<<12)
	in := []float32{1.5, -2.25, 3.0, 0.5}
	base := e.MemBase
	for i, v := range in {
		bits := math.Float32bits(v)
		e.Mem[i*4] = byte(bits)
		e.Mem[i*4+1] = byte(bits >> 8)
		e.Mem[i*4+2] = byte(bits >> 16)
		e.Mem[i*4+3] = byte(bits >> 24)
	}
	e.X[10] = base
	e.X[11] = base + 64
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	for i, v := range in {
		off := 64 + i*4
		bits := uint32(e.Mem[off]) | uint32(e.Mem[off+1])<<8 | uint32(e.Mem[off+2])<<16 | uint32(e.Mem[off+3])<<24
		if got := math.Float32frombits(bits); got != 2*v {
			t.Errorf("lane %d = %v, want %v", i, got, 2*v)
		}
	}
	if e.X[6] != 4 {
		t.Errorf("vsetvli e32 VL = %d, want 4", e.X[6])
	}
}

func TestSltVariants(t *testing.T) {
	e := run(t, `
		li    t0, -5
		li    t1, 3
		slt   a0, t0, t1    # signed: 1
		sltu  a1, t0, t1    # unsigned: -5 is huge → 0
		slti  a2, t1, 10    # 1
		sltiu a3, t1, 2     # 0
		ecall
	`)
	want := []uint64{1, 0, 1, 0}
	for i, w := range want {
		if e.X[10+i] != w {
			t.Errorf("x%d = %d, want %d", 10+i, e.X[10+i], w)
		}
	}
}

func TestFcvtRoundTrip(t *testing.T) {
	e := run(t, `
		li       t0, -12345
		fcvt.d.l fa0, t0
		fcvt.l.d a0, fa0
		ecall
	`)
	if int64(e.X[10]) != -12345 {
		t.Errorf("fcvt round trip = %d", int64(e.X[10]))
	}
	if e.F[10] != -12345.0 {
		t.Errorf("fcvt.d.l = %v", e.F[10])
	}
}
