// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package riscv

import (
	"encoding/binary"
	"fmt"
	"math"

	"riscvmem/internal/sim"
)

// Emulator executes an assembled Program against a simulated machine's
// memory-hierarchy timing model: every load and store is charged through a
// sim.Core, so the emulated kernel experiences the device's caches, TLBs,
// prefetchers and DRAM channels exactly like the Go kernels do.
type Emulator struct {
	Prog *Program

	X [32]uint64
	F [32]float64
	V [32][]byte // VLEN/8 bytes per register

	PC       uint64
	VL       int // elements, set by vsetvli
	SEW      int // element bits (32 or 64)
	VLenBits int

	Mem      []byte
	MemBase  uint64
	Executed uint64
	Halted   bool

	m *sim.Machine
}

// NewEmulator builds an emulator for prog with memBytes of flat data memory
// allocated in the simulated machine's address space. VLEN defaults to the
// C906's 128 bits.
func NewEmulator(prog *Program, m *sim.Machine, memBytes int) (*Emulator, error) {
	base, err := m.AllocRaw(int64(memBytes))
	if err != nil {
		return nil, err
	}
	e := &Emulator{
		Prog: prog, PC: prog.Base, VLenBits: 128,
		Mem: make([]byte, memBytes), MemBase: base, m: m,
	}
	for i := range e.V {
		e.V[i] = make([]byte, e.VLenBits/8)
	}
	return e, nil
}

// WriteF64 copies values into emulator memory at the simulated address
// (host-side, untimed — test/benchmark setup).
func (e *Emulator) WriteF64(addr uint64, vals []float64) error {
	off := addr - e.MemBase
	if off+uint64(len(vals))*8 > uint64(len(e.Mem)) {
		return fmt.Errorf("riscv: WriteF64 out of bounds")
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(e.Mem[off+uint64(i)*8:], math.Float64bits(v))
	}
	return nil
}

// ReadF64 copies values out of emulator memory (host-side, untimed).
func (e *Emulator) ReadF64(addr uint64, n int) ([]float64, error) {
	off := addr - e.MemBase
	if off+uint64(n)*8 > uint64(len(e.Mem)) {
		return nil, fmt.Errorf("riscv: ReadF64 out of bounds")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(e.Mem[off+uint64(i)*8:]))
	}
	return out, nil
}

func (e *Emulator) load(addr uint64, size int) (uint64, error) {
	off := addr - e.MemBase
	if addr < e.MemBase || off+uint64(size) > uint64(len(e.Mem)) {
		return 0, fmt.Errorf("riscv: load %d bytes at %#x outside data memory", size, addr)
	}
	switch size {
	case 1:
		return uint64(e.Mem[off]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(e.Mem[off:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(e.Mem[off:])), nil
	default:
		return binary.LittleEndian.Uint64(e.Mem[off:]), nil
	}
}

func (e *Emulator) store(addr uint64, size int, v uint64) error {
	off := addr - e.MemBase
	if addr < e.MemBase || off+uint64(size) > uint64(len(e.Mem)) {
		return fmt.Errorf("riscv: store %d bytes at %#x outside data memory", size, addr)
	}
	switch size {
	case 1:
		e.Mem[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(e.Mem[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(e.Mem[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(e.Mem[off:], v)
	}
	return nil
}

func (e *Emulator) setX(r int, v uint64) {
	if r != 0 {
		e.X[r] = v
	}
}

// vlmax returns VLEN/SEW for the current element width.
func (e *Emulator) vlmax(sewBits int) int { return e.VLenBits / sewBits }

// Run executes until ecall, an error, or maxInstr retired instructions,
// returning the simulated region result.
func (e *Emulator) Run(maxInstr uint64) (sim.Result, error) {
	var execErr error
	res := e.m.RunSeq(func(c *sim.Core) {
		for !e.Halted {
			if e.Executed >= maxInstr {
				execErr = fmt.Errorf("riscv: instruction budget %d exhausted at pc=%#x", maxInstr, e.PC)
				return
			}
			if err := e.step(c); err != nil {
				execErr = err
				return
			}
		}
	})
	return res, execErr
}

// step fetches, decodes, times and executes one instruction.
func (e *Emulator) step(c *sim.Core) error {
	idx := (e.PC - e.Prog.Base) / 4
	if e.PC < e.Prog.Base || idx >= uint64(len(e.Prog.Words)) {
		return fmt.Errorf("riscv: pc %#x outside program", e.PC)
	}
	in, err := Decode(e.Prog.Words[idx])
	if err != nil {
		return err
	}
	e.Executed++
	next := e.PC + 4
	s := in.Spec

	switch s.Class {
	case ClassALU, ClassBranch, ClassJump, ClassVSet, ClassSystem:
		c.IntOps(1)
	case ClassMul:
		c.Cycles(2)
	case ClassDiv:
		c.Cycles(20)
	case ClassFALU:
		c.Flops(1)
	case ClassFMA:
		c.Flops(2)
	case ClassFDiv:
		c.Cycles(15)
		// loads/stores charge via Touch below; vector ops charge per lane
	}

	x := func(r int) uint64 { return e.X[r] }
	switch s.Name {
	case "lui":
		e.setX(in.Rd, uint64(int64(int32(uint32(in.Imm)<<12))))
	case "auipc":
		e.setX(in.Rd, e.PC+uint64(int64(int32(uint32(in.Imm)<<12))))
	case "jal":
		e.setX(in.Rd, next)
		next = e.PC + uint64(in.Imm)
	case "jalr":
		t := next
		next = (x(in.Rs1) + uint64(in.Imm)) &^ 1
		e.setX(in.Rd, t)
	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		a, b := x(in.Rs1), x(in.Rs2)
		var taken bool
		switch s.Name {
		case "beq":
			taken = a == b
		case "bne":
			taken = a != b
		case "blt":
			taken = int64(a) < int64(b)
		case "bge":
			taken = int64(a) >= int64(b)
		case "bltu":
			taken = a < b
		case "bgeu":
			taken = a >= b
		}
		if taken {
			next = e.PC + uint64(in.Imm)
		}
	case "lb", "lh", "lw", "ld", "lbu", "lhu", "lwu":
		size := map[string]int{"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lwu": 4, "ld": 8}[s.Name]
		addr := x(in.Rs1) + uint64(in.Imm)
		c.Touch(addr, size, false)
		v, err := e.load(addr, size)
		if err != nil {
			return err
		}
		switch s.Name {
		case "lb":
			v = uint64(int64(int8(v)))
		case "lh":
			v = uint64(int64(int16(v)))
		case "lw":
			v = uint64(int64(int32(v)))
		}
		e.setX(in.Rd, v)
	case "sb", "sh", "sw", "sd":
		size := map[string]int{"sb": 1, "sh": 2, "sw": 4, "sd": 8}[s.Name]
		addr := x(in.Rs1) + uint64(in.Imm)
		c.Touch(addr, size, true)
		if err := e.store(addr, size, x(in.Rs2)); err != nil {
			return err
		}
	case "addi":
		e.setX(in.Rd, x(in.Rs1)+uint64(in.Imm))
	case "addiw":
		e.setX(in.Rd, uint64(int64(int32(uint32(x(in.Rs1))+uint32(in.Imm)))))
	case "slti":
		e.setX(in.Rd, b2u(int64(x(in.Rs1)) < in.Imm))
	case "sltiu":
		e.setX(in.Rd, b2u(x(in.Rs1) < uint64(in.Imm)))
	case "xori":
		e.setX(in.Rd, x(in.Rs1)^uint64(in.Imm))
	case "ori":
		e.setX(in.Rd, x(in.Rs1)|uint64(in.Imm))
	case "andi":
		e.setX(in.Rd, x(in.Rs1)&uint64(in.Imm))
	case "slli":
		e.setX(in.Rd, x(in.Rs1)<<uint(in.Imm))
	case "srli":
		e.setX(in.Rd, x(in.Rs1)>>uint(in.Imm))
	case "srai":
		e.setX(in.Rd, uint64(int64(x(in.Rs1))>>uint(in.Imm)))
	case "add":
		e.setX(in.Rd, x(in.Rs1)+x(in.Rs2))
	case "sub":
		e.setX(in.Rd, x(in.Rs1)-x(in.Rs2))
	case "addw":
		e.setX(in.Rd, uint64(int64(int32(uint32(x(in.Rs1))+uint32(x(in.Rs2))))))
	case "subw":
		e.setX(in.Rd, uint64(int64(int32(uint32(x(in.Rs1))-uint32(x(in.Rs2))))))
	case "sll":
		e.setX(in.Rd, x(in.Rs1)<<(x(in.Rs2)&63))
	case "srl":
		e.setX(in.Rd, x(in.Rs1)>>(x(in.Rs2)&63))
	case "sra":
		e.setX(in.Rd, uint64(int64(x(in.Rs1))>>(x(in.Rs2)&63)))
	case "slt":
		e.setX(in.Rd, b2u(int64(x(in.Rs1)) < int64(x(in.Rs2))))
	case "sltu":
		e.setX(in.Rd, b2u(x(in.Rs1) < x(in.Rs2)))
	case "xor":
		e.setX(in.Rd, x(in.Rs1)^x(in.Rs2))
	case "or":
		e.setX(in.Rd, x(in.Rs1)|x(in.Rs2))
	case "and":
		e.setX(in.Rd, x(in.Rs1)&x(in.Rs2))
	case "mul":
		e.setX(in.Rd, x(in.Rs1)*x(in.Rs2))
	case "mulw":
		e.setX(in.Rd, uint64(int64(int32(uint32(x(in.Rs1))*uint32(x(in.Rs2))))))
	case "mulh":
		hi, _ := mul128(int64(x(in.Rs1)), int64(x(in.Rs2)))
		e.setX(in.Rd, uint64(hi))
	case "mulhu":
		hi, _ := umul128(x(in.Rs1), x(in.Rs2))
		e.setX(in.Rd, hi)
	case "div":
		e.setX(in.Rd, udiv(int64(x(in.Rs1)), int64(x(in.Rs2)), true))
	case "divu":
		if x(in.Rs2) == 0 {
			e.setX(in.Rd, ^uint64(0))
		} else {
			e.setX(in.Rd, x(in.Rs1)/x(in.Rs2))
		}
	case "rem":
		e.setX(in.Rd, udiv(int64(x(in.Rs1)), int64(x(in.Rs2)), false))
	case "remu":
		if x(in.Rs2) == 0 {
			e.setX(in.Rd, x(in.Rs1))
		} else {
			e.setX(in.Rd, x(in.Rs1)%x(in.Rs2))
		}
	case "flw", "fld":
		size := 4
		if s.Name == "fld" {
			size = 8
		}
		addr := x(in.Rs1) + uint64(in.Imm)
		c.Touch(addr, size, false)
		v, err := e.load(addr, size)
		if err != nil {
			return err
		}
		if size == 4 {
			e.F[in.Rd] = float64(math.Float32frombits(uint32(v)))
		} else {
			e.F[in.Rd] = math.Float64frombits(v)
		}
	case "fsw", "fsd":
		size := 4
		if s.Name == "fsd" {
			size = 8
		}
		addr := x(in.Rs1) + uint64(in.Imm)
		c.Touch(addr, size, true)
		var bits uint64
		if size == 4 {
			bits = uint64(math.Float32bits(float32(e.F[in.Rs2])))
		} else {
			bits = math.Float64bits(e.F[in.Rs2])
		}
		if err := e.store(addr, size, bits); err != nil {
			return err
		}
	case "fadd.d":
		e.F[in.Rd] = e.F[in.Rs1] + e.F[in.Rs2]
	case "fsub.d":
		e.F[in.Rd] = e.F[in.Rs1] - e.F[in.Rs2]
	case "fmul.d":
		e.F[in.Rd] = e.F[in.Rs1] * e.F[in.Rs2]
	case "fdiv.d":
		e.F[in.Rd] = e.F[in.Rs1] / e.F[in.Rs2]
	case "fsgnj.d":
		e.F[in.Rd] = math.Copysign(e.F[in.Rs1], e.F[in.Rs2])
	case "fmin.d":
		e.F[in.Rd] = math.Min(e.F[in.Rs1], e.F[in.Rs2])
	case "fmax.d":
		e.F[in.Rd] = math.Max(e.F[in.Rs1], e.F[in.Rs2])
	case "feq.d":
		e.setX(in.Rd, b2u(e.F[in.Rs1] == e.F[in.Rs2]))
	case "flt.d":
		e.setX(in.Rd, b2u(e.F[in.Rs1] < e.F[in.Rs2]))
	case "fle.d":
		e.setX(in.Rd, b2u(e.F[in.Rs1] <= e.F[in.Rs2]))
	case "fmv.x.d":
		e.setX(in.Rd, math.Float64bits(e.F[in.Rs1]))
	case "fmv.d.x":
		e.F[in.Rd] = math.Float64frombits(x(in.Rs1))
	case "fcvt.d.l":
		e.F[in.Rd] = float64(int64(x(in.Rs1)))
	case "fcvt.l.d":
		e.setX(in.Rd, uint64(int64(e.F[in.Rs1])))
	case "fmadd.d":
		e.F[in.Rd] = e.F[in.Rs1]*e.F[in.Rs2] + e.F[in.Rs3]
	case "ecall":
		e.Halted = true
	case "vsetvli":
		sew := 8 << uint((in.Imm>>3)&7) // e8..e64 in bits
		e.SEW = sew
		avl := int(x(in.Rs1))
		if in.Rs1 == 0 && in.Rd != 0 {
			avl = e.vlmax(sew)
		}
		if max := e.vlmax(sew); avl > max {
			avl = max
		}
		e.VL = avl
		e.setX(in.Rd, uint64(avl))
	case "vle64.v", "vle32.v", "vse64.v", "vse32.v":
		if e.VL == 0 {
			return fmt.Errorf("riscv: vector memory op before vsetvli at pc=%#x", e.PC)
		}
		size := 8
		if s.Name == "vle32.v" || s.Name == "vse32.v" {
			size = 4
		}
		write := s.Name[1] == 's'
		base := x(in.Rs1)
		// Unit-stride vector memory ops charge the whole burst through the
		// bulk range API — one fused lookup per cache line instead of per
		// element, with identical simulated timing and statistics.
		c.TouchRange(base, size, e.VL, write)
		for k := 0; k < e.VL; k++ {
			addr := base + uint64(k*size)
			if write {
				var bits uint64
				if size == 8 {
					bits = binary.LittleEndian.Uint64(e.V[in.Rd][k*8:])
				} else {
					bits = uint64(binary.LittleEndian.Uint32(e.V[in.Rd][k*4:]))
				}
				if err := e.store(addr, size, bits); err != nil {
					return err
				}
			} else {
				v, err := e.load(addr, size)
				if err != nil {
					return err
				}
				if size == 8 {
					binary.LittleEndian.PutUint64(e.V[in.Rd][k*8:], v)
				} else {
					binary.LittleEndian.PutUint32(e.V[in.Rd][k*4:], uint32(v))
				}
			}
		}
	case "vfadd.vv", "vfsub.vv", "vfmul.vv", "vfmacc.vv",
		"vfadd.vf", "vfmul.vf", "vfmacc.vf", "vfmv.v.f":
		if e.VL == 0 {
			return fmt.Errorf("riscv: vector op before vsetvli at pc=%#x", e.PC)
		}
		// One pass of the vector unit per VLEN of work.
		passes := float64(e.VL*e.SEW) / float64(e.VLenBits)
		if passes < 1 {
			passes = 1
		}
		c.Cycles(passes)
		if err := e.vecArith(s.Name, in); err != nil {
			return err
		}
	default:
		return fmt.Errorf("riscv: unimplemented %q at pc=%#x", s.Name, e.PC)
	}
	e.PC = next
	return nil
}

// vecArith applies a floating-point vector operation lane-wise at the
// current SEW.
func (e *Emulator) vecArith(name string, in Instr) error {
	if e.SEW != 64 && e.SEW != 32 {
		return fmt.Errorf("riscv: unsupported SEW %d", e.SEW)
	}
	get := func(r, k int) float64 {
		if e.SEW == 64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(e.V[r][k*8:]))
		}
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(e.V[r][k*4:])))
	}
	put := func(r, k int, v float64) {
		if e.SEW == 64 {
			binary.LittleEndian.PutUint64(e.V[r][k*8:], math.Float64bits(v))
		} else {
			binary.LittleEndian.PutUint32(e.V[r][k*4:], math.Float32bits(float32(v)))
		}
	}
	for k := 0; k < e.VL; k++ {
		switch name {
		case "vfadd.vv":
			put(in.Rd, k, get(in.Rs2, k)+get(in.Rs1, k))
		case "vfsub.vv":
			put(in.Rd, k, get(in.Rs2, k)-get(in.Rs1, k))
		case "vfmul.vv":
			put(in.Rd, k, get(in.Rs2, k)*get(in.Rs1, k))
		case "vfmacc.vv":
			put(in.Rd, k, get(in.Rd, k)+get(in.Rs1, k)*get(in.Rs2, k))
		case "vfadd.vf":
			put(in.Rd, k, get(in.Rs2, k)+e.F[in.Rs1])
		case "vfmul.vf":
			put(in.Rd, k, get(in.Rs2, k)*e.F[in.Rs1])
		case "vfmacc.vf":
			put(in.Rd, k, get(in.Rd, k)+e.F[in.Rs1]*get(in.Rs2, k))
		case "vfmv.v.f":
			put(in.Rd, k, e.F[in.Rs1])
		}
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func udiv(a, b int64, quotient bool) uint64 {
	if b == 0 {
		if quotient {
			return ^uint64(0)
		}
		return uint64(a)
	}
	if a == math.MinInt64 && b == -1 { // overflow per spec
		if quotient {
			return uint64(a)
		}
		return 0
	}
	if quotient {
		return uint64(a / b)
	}
	return uint64(a % b)
}

// umul128 returns the high and low 64 bits of a*b (unsigned).
func umul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al * bl
	lo = t & mask
	carry := t >> 32
	t = ah*bl + carry
	w1 := t & mask
	w2 := t >> 32
	t = al*bh + w1
	lo |= (t & mask) << 32
	hi = ah*bh + w2 + t>>32
	return hi, lo
}

// mul128 returns the high and low 64 bits of a*b (signed).
func mul128(a, b int64) (hi int64, lo uint64) {
	uhi, ulo := umul128(uint64(a), uint64(b))
	h := int64(uhi)
	if a < 0 {
		h -= b
	}
	if b < 0 {
		h -= a
	}
	return h, ulo
}
