package riscv

import (
	"fmt"
	"strings"
)

// regFile identifies which register file an operand field addresses.
type regFile int

const (
	fileX regFile = iota
	fileF
	fileV
)

func regName(f regFile, n int) string {
	switch f {
	case fileF:
		return fmt.Sprintf("f%d", n)
	case fileV:
		return fmt.Sprintf("v%d", n)
	default:
		return fmt.Sprintf("x%d", n)
	}
}

// operandFiles returns the register files of (rd, rs1, rs2) for a spec.
func operandFiles(s *Spec) (rd, rs1, rs2 regFile) {
	switch s.Class {
	case ClassFLoad:
		return fileF, fileX, fileX
	case ClassFStore:
		return fileX, fileX, fileF // rs2 is the stored float
	case ClassFALU, ClassFMA, ClassFDiv:
		rd, rs1, rs2 = fileF, fileF, fileF
		switch s.Name {
		case "feq.d", "flt.d", "fle.d", "fmv.x.d", "fcvt.l.d":
			rd = fileX
		}
		switch s.Name {
		case "fmv.d.x", "fcvt.d.l":
			rs1 = fileX
		}
		return rd, rs1, rs2
	case ClassVLoad, ClassVStore:
		return fileV, fileX, fileX
	case ClassVALU, ClassVFMA:
		rd, rs1, rs2 = fileV, fileV, fileV
		if strings.HasSuffix(s.Name, ".vf") || s.Name == "vfmv.v.f" {
			rs1 = fileF
		}
		return rd, rs1, rs2
	default:
		return fileX, fileX, fileX
	}
}

// Disassemble renders one instruction word as assembly text. Branch and
// jump targets are shown as relative byte offsets (`.±N`).
func Disassemble(word uint32) (string, error) {
	in, err := Decode(word)
	if err != nil {
		return "", err
	}
	s := in.Spec
	fd, f1, f2 := operandFiles(s)
	rd := regName(fd, in.Rd)
	rs1 := regName(f1, in.Rs1)
	rs2 := regName(f2, in.Rs2)
	switch s.Format {
	case FormatR:
		if _, fixed := fixedRS2[s.Name]; fixed {
			return fmt.Sprintf("%s %s, %s", s.Name, rd, rs1), nil
		}
		return fmt.Sprintf("%s %s, %s, %s", s.Name, rd, rs1, rs2), nil
	case FormatR4:
		return fmt.Sprintf("%s %s, %s, %s, f%d", s.Name, rd, rs1, rs2, in.Rs3), nil
	case FormatI:
		switch {
		case s.Name == "ecall":
			return "ecall", nil
		case s.Class == ClassLoad || s.Class == ClassFLoad || s.Name == "jalr":
			return fmt.Sprintf("%s %s, %d(%s)", s.Name, rd, in.Imm, rs1), nil
		default:
			return fmt.Sprintf("%s %s, %s, %d", s.Name, rd, rs1, in.Imm), nil
		}
	case FormatS:
		return fmt.Sprintf("%s %s, %d(%s)", s.Name, rs2, in.Imm, rs1), nil
	case FormatB:
		return fmt.Sprintf("%s %s, %s, .%+d", s.Name, rs1, rs2, in.Imm), nil
	case FormatU:
		return fmt.Sprintf("%s %s, %d", s.Name, rd, in.Imm), nil
	case FormatJ:
		return fmt.Sprintf("%s %s, .%+d", s.Name, rd, in.Imm), nil
	case FormatVL, FormatVS:
		return fmt.Sprintf("%s v%d, (%s)", s.Name, in.Rd, rs1), nil
	case FormatVV:
		return fmt.Sprintf("%s %s, v%d, v%d", s.Name, rd, in.Rs2, in.Rs1), nil
	case FormatVF:
		switch s.Name {
		case "vfmv.v.f":
			return fmt.Sprintf("%s %s, f%d", s.Name, rd, in.Rs1), nil
		case "vfmacc.vf":
			return fmt.Sprintf("%s %s, f%d, v%d", s.Name, rd, in.Rs1, in.Rs2), nil
		default:
			return fmt.Sprintf("%s %s, v%d, f%d", s.Name, rd, in.Rs2, in.Rs1), nil
		}
	case FormatVVI:
		sew := 8 << uint((in.Imm>>3)&7)
		return fmt.Sprintf("vsetvli %s, %s, e%d, m1", rd, rs1, sew), nil
	}
	return "", fmt.Errorf("riscv: cannot render format %d", s.Format)
}

// DisassembleAll renders every word of a program, one line per instruction.
func (p *Program) DisassembleAll() []string {
	out := make([]string, len(p.Words))
	for i, w := range p.Words {
		s, err := Disassemble(w)
		if err != nil {
			s = fmt.Sprintf(".word %#08x", w)
		}
		out[i] = fmt.Sprintf("%#06x: %s", p.Base+uint64(4*i), s)
	}
	return out
}
