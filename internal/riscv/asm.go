package riscv

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled instruction stream.
type Program struct {
	Base   uint64 // address of Words[0]
	Words  []uint32
	Labels map[string]uint64
	// Lines maps each word to the 1-based source line it came from.
	Lines []int
}

// DefaultBase is where programs are assembled unless overridden.
const DefaultBase = 0x1000

// register name tables: x/f/v files share index space 0..31.
var xregs = map[string]int{}
var fregs = map[string]int{}
var vregs = map[string]int{}

func init() {
	abiX := []string{"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
		"s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
		"t3", "t4", "t5", "t6"}
	for i := 0; i < 32; i++ {
		xregs[fmt.Sprintf("x%d", i)] = i
		xregs[abiX[i]] = i
		fregs[fmt.Sprintf("f%d", i)] = i
		vregs[fmt.Sprintf("v%d", i)] = i
	}
	xregs["fp"] = 8
	abiF := []string{"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
		"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7",
		"fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9", "fs10", "fs11",
		"ft8", "ft9", "ft10", "ft11"}
	for i, n := range abiF {
		fregs[n] = i
	}
}

// item is one parsed source statement before encoding.
type item struct {
	line  int
	name  string
	args  []string
	label string // branch/jump target when the last operand is a label
}

type asmError struct {
	line int
	msg  string
}

func (e asmError) Error() string { return fmt.Sprintf("riscv: line %d: %s", e.line, e.msg) }

// Assemble translates assembly source (labels, instructions, pseudo-
// instructions, `#`/`//` comments) into a Program based at DefaultBase.
func Assemble(src string) (*Program, error) {
	return AssembleAt(src, DefaultBase)
}

// AssembleAt assembles with an explicit base address.
func AssembleAt(src string, base uint64) (*Program, error) {
	p := &Program{Base: base, Labels: map[string]uint64{}}
	var items []item

	addr := base
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		text := raw
		if i := strings.Index(text, "#"); i >= 0 {
			text = text[:i]
		}
		if i := strings.Index(text, "//"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		for {
			colon := strings.Index(text, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(text[:colon])
			if label == "" || strings.ContainsAny(label, " \t,()") {
				return nil, asmError{line, fmt.Sprintf("bad label %q", label)}
			}
			if _, dup := p.Labels[label]; dup {
				return nil, asmError{line, fmt.Sprintf("duplicate label %q", label)}
			}
			p.Labels[label] = addr
			text = strings.TrimSpace(text[colon+1:])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		name := strings.ToLower(fields[0])
		rest := strings.TrimSpace(text[len(fields[0]):])
		var args []string
		if rest != "" {
			for _, a := range strings.Split(rest, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
		exp, err := expand(line, name, args)
		if err != nil {
			return nil, err
		}
		items = append(items, exp...)
		addr += uint64(4 * len(exp))
	}

	// Second pass: encode with resolved labels.
	addr = base
	for _, it := range items {
		word, err := encodeItem(p, it, addr)
		if err != nil {
			return nil, err
		}
		p.Words = append(p.Words, word)
		p.Lines = append(p.Lines, it.line)
		addr += 4
	}
	return p, nil
}

// expand rewrites pseudo-instructions into base instructions. The expansion
// size depends only on the statement itself, so label addresses computed in
// the same pass stay exact.
func expand(line int, name string, args []string) ([]item, error) {
	mk := func(n string, a ...string) item { return item{line: line, name: n, args: a} }
	switch name {
	case "nop":
		return []item{mk("addi", "x0", "x0", "0")}, nil
	case "mv":
		if len(args) != 2 {
			return nil, asmError{line, "mv needs rd, rs"}
		}
		return []item{mk("addi", args[0], args[1], "0")}, nil
	case "li":
		if len(args) != 2 {
			return nil, asmError{line, "li needs rd, imm"}
		}
		v, err := parseImm(args[1])
		if err != nil {
			return nil, asmError{line, err.Error()}
		}
		if v >= -2048 && v <= 2047 {
			return []item{mk("addi", args[0], "x0", args[1])}, nil
		}
		if v < -(1<<31) || v >= 1<<31 {
			return nil, asmError{line, fmt.Sprintf("li immediate %d beyond 32 bits", v)}
		}
		shi := (v + 0x800) >> 12 // signed hi20; lui sign-extends, addiw wraps
		lo := v - shi<<12
		return []item{
			mk("lui", args[0], strconv.FormatInt(shi&0xfffff, 10)),
			mk("addiw", args[0], args[0], strconv.FormatInt(lo, 10)),
		}, nil
	case "la":
		if len(args) != 2 {
			return nil, asmError{line, "la needs rd, label"}
		}
		// auipc+addi pair; the label is resolved at encode time.
		return []item{
			{line: line, name: "auipc", args: []string{args[0]}, label: args[1]},
			{line: line, name: "addi.la", args: []string{args[0]}, label: args[1]},
		}, nil
	case "j":
		if len(args) != 1 {
			return nil, asmError{line, "j needs a target"}
		}
		return []item{mk("jal", "x0", args[0])}, nil
	case "ret":
		return []item{mk("jalr", "x0", "0(ra)")}, nil
	case "beqz":
		if len(args) != 2 {
			return nil, asmError{line, "beqz needs rs, target"}
		}
		return []item{mk("beq", args[0], "x0", args[1])}, nil
	case "bnez":
		if len(args) != 2 {
			return nil, asmError{line, "bnez needs rs, target"}
		}
		return []item{mk("bne", args[0], "x0", args[1])}, nil
	case "fmv.d":
		if len(args) != 2 {
			return nil, asmError{line, "fmv.d needs rd, rs"}
		}
		return []item{mk("fsgnj.d", args[0], args[1], args[1])}, nil
	default:
		return []item{{line: line, name: name, args: args}}, nil
	}
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

func parseReg(table map[string]int, s string) (int, error) {
	if r, ok := table[strings.ToLower(s)]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("unknown register %q", s)
}

// anyReg resolves a register name from whichever file it belongs to; the
// executor knows which file each instruction reads.
func anyReg(s string) (int, error) {
	ls := strings.ToLower(s)
	for _, t := range []map[string]int{xregs, fregs, vregs} {
		if r, ok := t[ls]; ok {
			return r, nil
		}
	}
	return 0, fmt.Errorf("unknown register %q", s)
}

// parseMem parses "imm(reg)" or "(reg)".
func parseMem(s string) (imm int64, reg int, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	if open > 0 {
		imm, err = parseImm(strings.TrimSpace(s[:open]))
		if err != nil {
			return 0, 0, err
		}
	}
	reg, err = parseReg(xregs, strings.TrimSpace(s[open+1:len(s)-1]))
	return imm, reg, err
}

// resolve returns the address of a label or a numeric literal offset.
func resolve(p *Program, it item, s string) (uint64, bool, error) {
	if a, ok := p.Labels[s]; ok {
		return a, true, nil
	}
	v, err := parseImm(s)
	if err != nil {
		return 0, false, asmError{it.line, fmt.Sprintf("unknown label or offset %q", s)}
	}
	return uint64(v), false, nil
}

func encodeItem(p *Program, it item, addr uint64) (uint32, error) {
	fail := func(msg string) (uint32, error) { return 0, asmError{it.line, msg} }

	// The la pseudo's two halves carry a label instead of an immediate.
	switch it.name {
	case "auipc":
		if it.label != "" {
			target, ok, err := resolve(p, it, it.label)
			if err != nil {
				return 0, err
			}
			if !ok {
				return fail("la needs a label")
			}
			delta := int64(target) - int64(addr)
			hi := (delta + 0x800) >> 12
			rd, err := parseReg(xregs, it.args[0])
			if err != nil {
				return fail(err.Error())
			}
			return Instr{Spec: byName["auipc"], Rd: rd, Imm: hi & 0xfffff}.Encode()
		}
	case "addi.la":
		target, ok, err := resolve(p, it, it.label)
		if err != nil {
			return 0, err
		}
		if !ok {
			return fail("la needs a label")
		}
		// addr is the second word; the auipc executed at addr-4.
		delta := int64(target) - int64(addr-4)
		hi := (delta + 0x800) >> 12
		lo := delta - hi<<12
		rd, err := parseReg(xregs, it.args[0])
		if err != nil {
			return fail(err.Error())
		}
		return Instr{Spec: byName["addi"], Rd: rd, Rs1: rd, Imm: lo}.Encode()
	}

	s, ok := Lookup(it.name)
	if !ok {
		return fail(fmt.Sprintf("unknown instruction %q", it.name))
	}
	in := Instr{Spec: s}
	need := func(n int) error {
		if len(it.args) != n {
			return asmError{it.line, fmt.Sprintf("%s needs %d operands, got %d", s.Name, n, len(it.args))}
		}
		return nil
	}
	var err error
	switch s.Format {
	case FormatR:
		if _, fixed := fixedRS2[s.Name]; fixed {
			if err = need(2); err != nil {
				return 0, err
			}
			if in.Rd, err = anyReg(it.args[0]); err != nil {
				return fail(err.Error())
			}
			if in.Rs1, err = anyReg(it.args[1]); err != nil {
				return fail(err.Error())
			}
			break
		}
		if err = need(3); err != nil {
			return 0, err
		}
		if in.Rd, err = anyReg(it.args[0]); err != nil {
			return fail(err.Error())
		}
		if in.Rs1, err = anyReg(it.args[1]); err != nil {
			return fail(err.Error())
		}
		if in.Rs2, err = anyReg(it.args[2]); err != nil {
			return fail(err.Error())
		}
	case FormatR4:
		if err = need(4); err != nil {
			return 0, err
		}
		regs := [4]int{}
		for i, a := range it.args {
			if regs[i], err = parseReg(fregs, a); err != nil {
				return fail(err.Error())
			}
		}
		in.Rd, in.Rs1, in.Rs2, in.Rs3 = regs[0], regs[1], regs[2], regs[3]
	case FormatI:
		switch {
		case s.Name == "ecall":
			if err = need(0); err != nil {
				return 0, err
			}
		case s.Class == ClassLoad || s.Class == ClassFLoad || s.Name == "jalr":
			if err = need(2); err != nil {
				return 0, err
			}
			if in.Rd, err = anyReg(it.args[0]); err != nil {
				return fail(err.Error())
			}
			if in.Imm, in.Rs1, err = parseMem(it.args[1]); err != nil {
				return fail(err.Error())
			}
		default:
			if err = need(3); err != nil {
				return 0, err
			}
			if in.Rd, err = parseReg(xregs, it.args[0]); err != nil {
				return fail(err.Error())
			}
			if in.Rs1, err = parseReg(xregs, it.args[1]); err != nil {
				return fail(err.Error())
			}
			if in.Imm, err = parseImm(it.args[2]); err != nil {
				return fail(err.Error())
			}
		}
	case FormatS:
		if err = need(2); err != nil {
			return 0, err
		}
		if in.Rs2, err = anyReg(it.args[0]); err != nil {
			return fail(err.Error())
		}
		if in.Imm, in.Rs1, err = parseMem(it.args[1]); err != nil {
			return fail(err.Error())
		}
	case FormatB:
		if err = need(3); err != nil {
			return 0, err
		}
		if in.Rs1, err = parseReg(xregs, it.args[0]); err != nil {
			return fail(err.Error())
		}
		if in.Rs2, err = parseReg(xregs, it.args[1]); err != nil {
			return fail(err.Error())
		}
		target, isLabel, err := resolve(p, it, it.args[2])
		if err != nil {
			return 0, err
		}
		if isLabel {
			in.Imm = int64(target) - int64(addr)
		} else {
			in.Imm = int64(target)
		}
	case FormatU:
		if err = need(2); err != nil {
			return 0, err
		}
		if in.Rd, err = parseReg(xregs, it.args[0]); err != nil {
			return fail(err.Error())
		}
		if in.Imm, err = parseImm(it.args[1]); err != nil {
			return fail(err.Error())
		}
		in.Imm &= 0xfffff
	case FormatJ:
		if err = need(2); err != nil {
			return 0, err
		}
		if in.Rd, err = parseReg(xregs, it.args[0]); err != nil {
			return fail(err.Error())
		}
		target, isLabel, err := resolve(p, it, it.args[1])
		if err != nil {
			return 0, err
		}
		if isLabel {
			in.Imm = int64(target) - int64(addr)
		} else {
			in.Imm = int64(target)
		}
	case FormatVL, FormatVS:
		if err = need(2); err != nil {
			return 0, err
		}
		if in.Rd, err = parseReg(vregs, it.args[0]); err != nil {
			return fail(err.Error())
		}
		if _, in.Rs1, err = parseMem(it.args[1]); err != nil {
			return fail(err.Error())
		}
	case FormatVV:
		if err = need(3); err != nil {
			return 0, err
		}
		if in.Rd, err = parseReg(vregs, it.args[0]); err != nil {
			return fail(err.Error())
		}
		if in.Rs2, err = parseReg(vregs, it.args[1]); err != nil {
			return fail(err.Error())
		}
		if in.Rs1, err = parseReg(vregs, it.args[2]); err != nil {
			return fail(err.Error())
		}
	case FormatVF:
		switch s.Name {
		case "vfmv.v.f":
			if err = need(2); err != nil {
				return 0, err
			}
			if in.Rd, err = parseReg(vregs, it.args[0]); err != nil {
				return fail(err.Error())
			}
			if in.Rs1, err = parseReg(fregs, it.args[1]); err != nil {
				return fail(err.Error())
			}
		case "vfmacc.vf":
			// RVV order: vd, rs1(f), vs2.
			if err = need(3); err != nil {
				return 0, err
			}
			if in.Rd, err = parseReg(vregs, it.args[0]); err != nil {
				return fail(err.Error())
			}
			if in.Rs1, err = parseReg(fregs, it.args[1]); err != nil {
				return fail(err.Error())
			}
			if in.Rs2, err = parseReg(vregs, it.args[2]); err != nil {
				return fail(err.Error())
			}
		default:
			// vfadd.vf / vfmul.vf: vd, vs2, rs1(f).
			if err = need(3); err != nil {
				return 0, err
			}
			if in.Rd, err = parseReg(vregs, it.args[0]); err != nil {
				return fail(err.Error())
			}
			if in.Rs2, err = parseReg(vregs, it.args[1]); err != nil {
				return fail(err.Error())
			}
			if in.Rs1, err = parseReg(fregs, it.args[2]); err != nil {
				return fail(err.Error())
			}
		}
	case FormatVVI:
		// vsetvli rd, rs1, eSEW, mLMUL [, ta][, ma]
		if len(it.args) < 3 {
			return fail("vsetvli needs rd, rs1, eN[, mN]")
		}
		if in.Rd, err = parseReg(xregs, it.args[0]); err != nil {
			return fail(err.Error())
		}
		if in.Rs1, err = parseReg(xregs, it.args[1]); err != nil {
			return fail(err.Error())
		}
		var vsew int64
		switch strings.ToLower(it.args[2]) {
		case "e8":
			vsew = 0
		case "e16":
			vsew = 1
		case "e32":
			vsew = 2
		case "e64":
			vsew = 3
		default:
			return fail(fmt.Sprintf("bad element width %q", it.args[2]))
		}
		for _, extra := range it.args[3:] {
			switch strings.ToLower(extra) {
			case "m1", "ta", "tu", "ma", "mu":
				// LMUL=1 and tail/mask policies are accepted and ignored.
			default:
				return fail(fmt.Sprintf("unsupported vsetvli argument %q", extra))
			}
		}
		in.Imm = vsew << 3
	}
	return in.Encode()
}
