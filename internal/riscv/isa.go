// Package riscv implements an RV64IMFD + RVV-subset assembler, encoder,
// decoder and timing-aware emulator.
//
// Why it exists: the paper's footnote to §4.3 notes that its OpenCV
// comparison point ran on "a Linux image that supports vector instructions"
// — the one place the study touches RVV. Go exposes no RVV intrinsics, so
// this package is the substitution: kernels written in RISC-V assembly
// (including the vector extension) execute against the same memory-hierarchy
// timing model as the Go kernels, letting the repository demonstrate what
// the paper could only observe through OpenCV — the behaviour of the vector
// memory path on the C906-class core (see examples/rvvstream).
//
// The implemented subset is RV64I integer, M multiply/divide, D
// double-precision float (plus the F load/store widths), and an RVV-1.0
// slice: vsetvli, unit-stride vector loads/stores, and the float arithmetic
// used by STREAM-style kernels. Encodings follow the ratified specifications
// so that encode→decode round-trips are exact.
package riscv

import "fmt"

// Format is an instruction encoding format.
type Format int

// The RISC-V encoding formats used by the supported subset.
const (
	FormatR Format = iota
	FormatI
	FormatS
	FormatB
	FormatU
	FormatJ
	FormatR4  // fused multiply-add: rs3 in [31:27]
	FormatVL  // vector unit-stride load
	FormatVS  // vector unit-stride store
	FormatVV  // OP-V, vector-vector
	FormatVF  // OP-V, vector-scalar(f)
	FormatVVI // vsetvli
)

// Class drives the emulator's timing model.
type Class int

// Instruction timing classes.
const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassFALU
	ClassFMA
	ClassFDiv
	ClassFLoad
	ClassFStore
	ClassVSet
	ClassVLoad
	ClassVStore
	ClassVALU
	ClassVFMA
	ClassSystem
)

// Spec describes one instruction's mnemonic, encoding and timing class.
type Spec struct {
	Name   string
	Format Format
	Class  Class
	Opcode uint32 // [6:0]
	Funct3 uint32 // [14:12]
	Funct7 uint32 // [31:25] (R); funct6<<1|vm for OP-V; width/mew bits for V mem
}

// Major opcodes.
const (
	opLUI    = 0b0110111
	opAUIPC  = 0b0010111
	opJAL    = 0b1101111
	opJALR   = 0b1100111
	opBRANCH = 0b1100011
	opLOAD   = 0b0000011
	opSTORE  = 0b0100011
	opOPIMM  = 0b0010011
	opOP     = 0b0110011
	opOPIMMW = 0b0011011
	opOPW    = 0b0111011
	opLOADFP = 0b0000111 // FLW/FLD and vector loads
	opSTOREF = 0b0100111 // FSW/FSD and vector stores
	opFP     = 0b1010011
	opFMADD  = 0b1000011
	opOPV    = 0b1010111
	opSYSTEM = 0b1110011
)

// specs lists every supported instruction. Pseudo-instructions (li, mv, j,
// ret, beqz, bnez, la, fmv.d, vfmv boilerplate) are expanded by the
// assembler, not listed here.
var specs = []Spec{
	// RV64I — upper immediates, jumps, branches.
	{"lui", FormatU, ClassALU, opLUI, 0, 0},
	{"auipc", FormatU, ClassALU, opAUIPC, 0, 0},
	{"jal", FormatJ, ClassJump, opJAL, 0, 0},
	{"jalr", FormatI, ClassJump, opJALR, 0b000, 0},
	{"beq", FormatB, ClassBranch, opBRANCH, 0b000, 0},
	{"bne", FormatB, ClassBranch, opBRANCH, 0b001, 0},
	{"blt", FormatB, ClassBranch, opBRANCH, 0b100, 0},
	{"bge", FormatB, ClassBranch, opBRANCH, 0b101, 0},
	{"bltu", FormatB, ClassBranch, opBRANCH, 0b110, 0},
	{"bgeu", FormatB, ClassBranch, opBRANCH, 0b111, 0},
	// Loads/stores.
	{"lb", FormatI, ClassLoad, opLOAD, 0b000, 0},
	{"lh", FormatI, ClassLoad, opLOAD, 0b001, 0},
	{"lw", FormatI, ClassLoad, opLOAD, 0b010, 0},
	{"ld", FormatI, ClassLoad, opLOAD, 0b011, 0},
	{"lbu", FormatI, ClassLoad, opLOAD, 0b100, 0},
	{"lhu", FormatI, ClassLoad, opLOAD, 0b101, 0},
	{"lwu", FormatI, ClassLoad, opLOAD, 0b110, 0},
	{"sb", FormatS, ClassStore, opSTORE, 0b000, 0},
	{"sh", FormatS, ClassStore, opSTORE, 0b001, 0},
	{"sw", FormatS, ClassStore, opSTORE, 0b010, 0},
	{"sd", FormatS, ClassStore, opSTORE, 0b011, 0},
	// Integer immediate.
	{"addi", FormatI, ClassALU, opOPIMM, 0b000, 0},
	{"slti", FormatI, ClassALU, opOPIMM, 0b010, 0},
	{"sltiu", FormatI, ClassALU, opOPIMM, 0b011, 0},
	{"xori", FormatI, ClassALU, opOPIMM, 0b100, 0},
	{"ori", FormatI, ClassALU, opOPIMM, 0b110, 0},
	{"andi", FormatI, ClassALU, opOPIMM, 0b111, 0},
	{"slli", FormatI, ClassALU, opOPIMM, 0b001, 0b0000000},
	{"srli", FormatI, ClassALU, opOPIMM, 0b101, 0b0000000},
	{"srai", FormatI, ClassALU, opOPIMM, 0b101, 0b0100000},
	{"addiw", FormatI, ClassALU, opOPIMMW, 0b000, 0},
	// Integer register.
	{"add", FormatR, ClassALU, opOP, 0b000, 0b0000000},
	{"sub", FormatR, ClassALU, opOP, 0b000, 0b0100000},
	{"sll", FormatR, ClassALU, opOP, 0b001, 0b0000000},
	{"slt", FormatR, ClassALU, opOP, 0b010, 0b0000000},
	{"sltu", FormatR, ClassALU, opOP, 0b011, 0b0000000},
	{"xor", FormatR, ClassALU, opOP, 0b100, 0b0000000},
	{"srl", FormatR, ClassALU, opOP, 0b101, 0b0000000},
	{"sra", FormatR, ClassALU, opOP, 0b101, 0b0100000},
	{"or", FormatR, ClassALU, opOP, 0b110, 0b0000000},
	{"and", FormatR, ClassALU, opOP, 0b111, 0b0000000},
	{"addw", FormatR, ClassALU, opOPW, 0b000, 0b0000000},
	{"subw", FormatR, ClassALU, opOPW, 0b000, 0b0100000},
	// M extension.
	{"mul", FormatR, ClassMul, opOP, 0b000, 0b0000001},
	{"mulh", FormatR, ClassMul, opOP, 0b001, 0b0000001},
	{"mulhu", FormatR, ClassMul, opOP, 0b011, 0b0000001},
	{"div", FormatR, ClassDiv, opOP, 0b100, 0b0000001},
	{"divu", FormatR, ClassDiv, opOP, 0b101, 0b0000001},
	{"rem", FormatR, ClassDiv, opOP, 0b110, 0b0000001},
	{"remu", FormatR, ClassDiv, opOP, 0b111, 0b0000001},
	{"mulw", FormatR, ClassMul, opOPW, 0b000, 0b0000001},
	// F/D loads and stores (funct3 = width).
	{"flw", FormatI, ClassFLoad, opLOADFP, 0b010, 0},
	{"fld", FormatI, ClassFLoad, opLOADFP, 0b011, 0},
	{"fsw", FormatS, ClassFStore, opSTOREF, 0b010, 0},
	{"fsd", FormatS, ClassFStore, opSTOREF, 0b011, 0},
	// D arithmetic (fmt=01 in funct7 low bits).
	{"fadd.d", FormatR, ClassFALU, opFP, 0b111, 0b0000001},
	{"fsub.d", FormatR, ClassFALU, opFP, 0b111, 0b0000101},
	{"fmul.d", FormatR, ClassFALU, opFP, 0b111, 0b0001001},
	{"fdiv.d", FormatR, ClassFDiv, opFP, 0b111, 0b0001101},
	{"fsgnj.d", FormatR, ClassFALU, opFP, 0b000, 0b0010001},
	{"fmin.d", FormatR, ClassFALU, opFP, 0b000, 0b0010101},
	{"fmax.d", FormatR, ClassFALU, opFP, 0b001, 0b0010101},
	{"feq.d", FormatR, ClassFALU, opFP, 0b010, 0b1010001},
	{"flt.d", FormatR, ClassFALU, opFP, 0b001, 0b1010001},
	{"fle.d", FormatR, ClassFALU, opFP, 0b000, 0b1010001},
	{"fmv.x.d", FormatR, ClassFALU, opFP, 0b000, 0b1110001},
	{"fmv.d.x", FormatR, ClassFALU, opFP, 0b000, 0b1111001},
	{"fcvt.d.l", FormatR, ClassFALU, opFP, 0b111, 0b1101001}, // rs2 = 00010
	{"fcvt.l.d", FormatR, ClassFALU, opFP, 0b001, 0b1100001}, // rs2 = 00010
	{"fmadd.d", FormatR4, ClassFMA, opFMADD, 0b111, 0b01},
	// System.
	{"ecall", FormatI, ClassSystem, opSYSTEM, 0b000, 0},
	// RVV 1.0 subset. Vector loads/stores: funct3 encodes element width
	// (0b111 = 64-bit, 0b110 = 32-bit); Funct7 carries [31:25] = mop/vm
	// bits fixed to unit-stride, unmasked (0b0000001 → vm=1).
	{"vsetvli", FormatVVI, ClassVSet, opOPV, 0b111, 0},
	{"vle64.v", FormatVL, ClassVLoad, opLOADFP, 0b111, 0b0000001},
	{"vle32.v", FormatVL, ClassVLoad, opLOADFP, 0b110, 0b0000001},
	{"vse64.v", FormatVS, ClassVStore, opSTOREF, 0b111, 0b0000001},
	{"vse32.v", FormatVS, ClassVStore, opSTOREF, 0b110, 0b0000001},
	// OP-V arithmetic: Funct7 = funct6<<1 | vm (vm=1, unmasked).
	{"vfadd.vv", FormatVV, ClassVALU, opOPV, 0b001, 0b000000_1},
	{"vfsub.vv", FormatVV, ClassVALU, opOPV, 0b001, 0b000010_1},
	{"vfmul.vv", FormatVV, ClassVALU, opOPV, 0b001, 0b100100_1},
	{"vfadd.vf", FormatVF, ClassVALU, opOPV, 0b101, 0b000000_1},
	{"vfmul.vf", FormatVF, ClassVALU, opOPV, 0b101, 0b100100_1},
	{"vfmacc.vf", FormatVF, ClassVFMA, opOPV, 0b101, 0b101100_1},
	{"vfmacc.vv", FormatVV, ClassVFMA, opOPV, 0b001, 0b101100_1},
	{"vfmv.v.f", FormatVF, ClassVALU, opOPV, 0b101, 0b010111_1},
}

// byName indexes specs by mnemonic; byKey by decode key.
var (
	byName = map[string]*Spec{}
	byKey  = map[uint64]*Spec{}
)

// decodeKey builds the lookup key for an instruction word's fixed fields.
func decodeKey(opcode, funct3, funct7 uint32) uint64 {
	return uint64(opcode) | uint64(funct3)<<8 | uint64(funct7)<<16
}

func init() {
	for i := range specs {
		s := &specs[i]
		if _, dup := byName[s.Name]; dup {
			panic("riscv: duplicate mnemonic " + s.Name)
		}
		byName[s.Name] = s
		key := decodeKey(s.Opcode, s.Funct3, s.keyFunct7())
		if _, dup := byKey[key]; dup {
			panic(fmt.Sprintf("riscv: ambiguous decode key for %s", s.Name))
		}
		byKey[key] = s
	}
}

// keyFunct7 returns the funct7 bits that participate in decoding for the
// spec's format (formats without funct7 decode on opcode+funct3 alone).
func (s *Spec) keyFunct7() uint32 {
	switch s.Format {
	case FormatR, FormatVV, FormatVF, FormatVL, FormatVS:
		return s.Funct7
	case FormatR4:
		return s.Funct7 // fmt field [26:25]
	case FormatI:
		if s.Opcode == opOPIMM && (s.Funct3 == 0b001 || s.Funct3 == 0b101) {
			return s.Funct7 // shifts discriminate on imm[11:5]... [31:26] for RV64
		}
		return 0
	default:
		return 0
	}
}

// Lookup returns the spec for a mnemonic.
func Lookup(name string) (*Spec, bool) {
	s, ok := byName[name]
	return s, ok
}
