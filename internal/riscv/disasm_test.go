package riscv

import (
	"strings"
	"testing"
)

// corpus exercises every instruction format through the assembler.
const corpus = `
start:
	lui     x5, 1234
	auipc   x6, 0
	addi    a0, a1, -7
	slli    t0, t1, 13
	srai    t2, t3, 3
	add     s0, s1, s2
	sub     s3, s4, s5
	mul     a2, a3, a4
	div     a5, a6, a7
	ld      t4, 16(sp)
	sd      t5, -8(sp)
	lbu     t6, 0(gp)
	beq     a0, a1, start
	bne     a2, a3, start
	jal     ra, start
	jalr    x0, 0(ra)
	fld     fa0, 0(a0)
	fsd     fa1, 8(a0)
	fadd.d  fa2, fa3, fa4
	fmadd.d fa5, fa6, fa7, fs0
	fmv.x.d t0, fa0
	fcvt.d.l fa1, t1
	flt.d   t2, fa2, fa3
	vsetvli t0, a0, e64, m1
	vle64.v v1, (a1)
	vse64.v v2, (a2)
	vfadd.vv v3, v4, v5
	vfmacc.vf v6, fa0, v7
	vfmv.v.f v8, fa1
	ecall
`

// TestDisassembleRoundTrip: assemble → disassemble → re-assemble must give
// identical machine words (labels become numeric offsets, which the
// assembler accepts for branches and jumps).
func TestDisassembleRoundTrip(t *testing.T) {
	p1, err := Assemble(corpus)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, w := range p1.Words {
		s, err := Disassemble(w)
		if err != nil {
			t.Fatalf("disassemble %#08x: %v", w, err)
		}
		// Branch/jump targets render as `.±N`; numeric offsets re-assemble.
		s = strings.Replace(s, ", .+", ", ", 1)
		s = strings.Replace(s, ", .-", ", -", 1)
		lines = append(lines, s)
	}
	p2, err := Assemble(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatalf("re-assemble: %v\n%s", err, strings.Join(lines, "\n"))
	}
	if len(p1.Words) != len(p2.Words) {
		t.Fatalf("word counts differ: %d vs %d", len(p1.Words), len(p2.Words))
	}
	for i := range p1.Words {
		if p1.Words[i] != p2.Words[i] {
			t.Errorf("word %d: %#08x vs %#08x (%q)", i, p1.Words[i], p2.Words[i], lines[i])
		}
	}
}

func TestDisassembleSpotChecks(t *testing.T) {
	cases := map[string]string{
		"addi a0, a1, -7":            "addi x10, x11, -7",
		"ld t4, 16(sp)":              "ld x29, 16(x2)",
		"fadd.d fa2, fa3, fa4":       "fadd.d f12, f13, f14",
		"vsetvli t0, a0, e64, m1":    "vsetvli x5, x10, e64, m1",
		"vfmacc.vf v6, fa0, v7":      "vfmacc.vf v6, f10, v7",
		"vle64.v v1, (a1)":           "vle64.v v1, (x11)",
		"fmadd.d fa5, fa6, fa7, fs0": "fmadd.d f15, f16, f17, f8",
		"ecall":                      "ecall",
	}
	for src, want := range cases {
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		got, err := Disassemble(p.Words[0])
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got != want {
			t.Errorf("%q disassembled as %q, want %q", src, got, want)
		}
	}
}

func TestDisassembleAllHandlesGarbage(t *testing.T) {
	p := &Program{Base: 0x1000, Words: []uint32{0xffffffff}}
	out := p.DisassembleAll()
	if len(out) != 1 || !strings.Contains(out[0], ".word") {
		t.Fatalf("garbage word rendered as %v", out)
	}
}
