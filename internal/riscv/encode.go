package riscv

import "fmt"

// Instr is one decoded (or to-be-encoded) instruction.
type Instr struct {
	Spec *Spec
	Rd   int
	Rs1  int
	Rs2  int
	Rs3  int // FormatR4 only
	// Imm is the sign-extended immediate: 12-bit value for I/S, byte offset
	// for B/J, the raw 20-bit value for U (not shifted), shamt for shifts,
	// and the vtype zimm for vsetvli.
	Imm int64
}

// fixedRS2 holds rs2 values hard-wired by the encoding for two-operand
// FormatR instructions.
var fixedRS2 = map[string]int{
	"fmv.x.d": 0, "fmv.d.x": 0,
	"fcvt.d.l": 2, "fcvt.l.d": 2,
}

func reg(v int) uint32 { return uint32(v) & 31 }

// Encode produces the 32-bit instruction word.
func (i Instr) Encode() (uint32, error) {
	s := i.Spec
	if s == nil {
		return 0, fmt.Errorf("riscv: encode without spec")
	}
	switch s.Format {
	case FormatR:
		rs2 := reg(i.Rs2)
		if v, ok := fixedRS2[s.Name]; ok {
			rs2 = uint32(v)
		}
		return s.Funct7<<25 | rs2<<20 | reg(i.Rs1)<<15 | s.Funct3<<12 | reg(i.Rd)<<7 | s.Opcode, nil
	case FormatR4:
		// fmadd: rs3 in [31:27], fmt (01 = double) in [26:25].
		return reg(i.Rs3)<<27 | s.Funct7<<25 | reg(i.Rs2)<<20 | reg(i.Rs1)<<15 | s.Funct3<<12 | reg(i.Rd)<<7 | s.Opcode, nil
	case FormatI:
		imm := i.Imm
		if s.Opcode == opOPIMM && (s.Funct3 == 0b001 || s.Funct3 == 0b101) {
			if imm < 0 || imm > 63 {
				return 0, fmt.Errorf("riscv: %s shamt %d out of range", s.Name, imm)
			}
			return s.Funct7<<25 | uint32(imm)<<20 | reg(i.Rs1)<<15 | s.Funct3<<12 | reg(i.Rd)<<7 | s.Opcode, nil
		}
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("riscv: %s immediate %d out of range", s.Name, imm)
		}
		return uint32(imm&0xfff)<<20 | reg(i.Rs1)<<15 | s.Funct3<<12 | reg(i.Rd)<<7 | s.Opcode, nil
	case FormatS:
		imm := i.Imm
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("riscv: %s offset %d out of range", s.Name, imm)
		}
		u := uint32(imm & 0xfff)
		return (u>>5)<<25 | reg(i.Rs2)<<20 | reg(i.Rs1)<<15 | s.Funct3<<12 | (u&31)<<7 | s.Opcode, nil
	case FormatB:
		imm := i.Imm
		if imm < -4096 || imm > 4095 || imm%2 != 0 {
			return 0, fmt.Errorf("riscv: %s branch offset %d invalid", s.Name, imm)
		}
		u := uint32(imm) & 0x1fff
		return (u>>12)<<31 | ((u>>5)&0x3f)<<25 | reg(i.Rs2)<<20 | reg(i.Rs1)<<15 |
			s.Funct3<<12 | ((u>>1)&0xf)<<8 | ((u>>11)&1)<<7 | s.Opcode, nil
	case FormatU:
		if i.Imm < 0 || i.Imm > 0xfffff {
			return 0, fmt.Errorf("riscv: %s upper immediate %#x out of range", s.Name, i.Imm)
		}
		return uint32(i.Imm)<<12 | reg(i.Rd)<<7 | s.Opcode, nil
	case FormatJ:
		imm := i.Imm
		if imm < -(1<<20) || imm >= 1<<20 || imm%2 != 0 {
			return 0, fmt.Errorf("riscv: jal offset %d invalid", imm)
		}
		u := uint32(imm) & 0x1fffff
		return (u>>20)<<31 | ((u>>1)&0x3ff)<<21 | ((u>>11)&1)<<20 | ((u>>12)&0xff)<<12 | reg(i.Rd)<<7 | s.Opcode, nil
	case FormatVL:
		return s.Funct7<<25 | 0<<20 | reg(i.Rs1)<<15 | s.Funct3<<12 | reg(i.Rd)<<7 | s.Opcode, nil
	case FormatVS:
		// vs3 (the data source) lives in the rd field position [11:7].
		return s.Funct7<<25 | 0<<20 | reg(i.Rs1)<<15 | s.Funct3<<12 | reg(i.Rd)<<7 | s.Opcode, nil
	case FormatVV, FormatVF:
		return s.Funct7<<25 | reg(i.Rs2)<<20 | reg(i.Rs1)<<15 | s.Funct3<<12 | reg(i.Rd)<<7 | s.Opcode, nil
	case FormatVVI:
		if i.Imm < 0 || i.Imm > 0x3ff {
			return 0, fmt.Errorf("riscv: vsetvli vtype %#x out of range", i.Imm)
		}
		return uint32(i.Imm)<<20 | reg(i.Rs1)<<15 | s.Funct3<<12 | reg(i.Rd)<<7 | s.Opcode, nil
	}
	return 0, fmt.Errorf("riscv: unknown format %d", s.Format)
}

func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// Decode parses a 32-bit instruction word back into an Instr.
func Decode(word uint32) (Instr, error) {
	opcode := word & 0x7f
	funct3 := (word >> 12) & 7
	funct7 := word >> 25
	rd := int((word >> 7) & 31)
	rs1 := int((word >> 15) & 31)
	rs2 := int((word >> 20) & 31)

	keyF3 := funct3
	if opcode == opLUI || opcode == opAUIPC || opcode == opJAL {
		keyF3 = 0 // U/J formats have no funct3; those bits are immediate
	}
	keyF7 := func() uint32 {
		switch opcode {
		case opOP, opOPW, opFP:
			return funct7
		case opOPIMM:
			if funct3 == 0b001 || funct3 == 0b101 {
				return funct7 & 0b1111110 // RV64 shifts: bit 25 is shamt[5]
			}
			return 0
		case opFMADD:
			return (word >> 25) & 3 // fmt field
		case opOPV:
			if funct3 == 0b111 {
				return 0 // vsetvli
			}
			return funct7
		case opLOADFP, opSTOREF:
			if funct3 == 0b010 || funct3 == 0b011 {
				return 0 // scalar flw/fld/fsw/fsd
			}
			return funct7
		default:
			return 0
		}
	}()
	s, ok := byKey[decodeKey(opcode, keyF3, keyF7)]
	if !ok {
		return Instr{}, fmt.Errorf("riscv: cannot decode %#08x (opcode %#x funct3 %#x funct7 %#x)",
			word, opcode, funct3, keyF7)
	}
	in := Instr{Spec: s, Rd: rd, Rs1: rs1, Rs2: rs2}
	switch s.Format {
	case FormatR, FormatVV, FormatVF, FormatVL, FormatVS:
		// registers already extracted
	case FormatR4:
		in.Rs3 = int(word >> 27)
	case FormatI:
		if s.Opcode == opOPIMM && (funct3 == 0b001 || funct3 == 0b101) {
			in.Imm = int64((word >> 20) & 0x3f)
		} else {
			in.Imm = signExtend(word>>20, 12)
		}
	case FormatS:
		in.Imm = signExtend((word>>25)<<5|(word>>7)&31, 12)
	case FormatB:
		u := (word>>31)<<12 | ((word>>7)&1)<<11 | ((word>>25)&0x3f)<<5 | ((word>>8)&0xf)<<1
		in.Imm = signExtend(u, 13)
	case FormatU:
		in.Imm = int64(word >> 12)
	case FormatJ:
		u := (word>>31)<<20 | ((word>>12)&0xff)<<12 | ((word>>20)&1)<<11 | ((word>>21)&0x3ff)<<1
		in.Imm = signExtend(u, 21)
	case FormatVVI:
		in.Imm = int64((word >> 20) & 0x7ff)
	}
	return in, nil
}
