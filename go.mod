module riscvmem

go 1.24
