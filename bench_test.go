// Benchmarks regenerating every figure of the paper's evaluation section.
// Each benchmark runs the corresponding experiment on the simulated devices
// and reports the figure's numbers as custom metrics (simulated seconds,
// GB/s, utilization) — the benchmark's own wall-clock time is just the cost
// of simulation. Scale 16 keeps a full `go test -bench=.` run in minutes;
// cmd/paperfigs -full reproduces paper-scale sizes.
package riscvmem_test

import (
	"fmt"
	"testing"

	"riscvmem"
	"riscvmem/internal/hier"
	"riscvmem/internal/kernels/transpose"
)

const benchScale = 16

// BenchmarkFig1Stream regenerates Fig. 1: STREAM bandwidth per device and
// memory level (TRIAD shown; the suite measures all four tests).
func BenchmarkFig1Stream(b *testing.B) {
	for _, dev := range riscvmem.Devices() {
		for _, lv := range riscvmem.StreamLevels(dev, benchScale) {
			b.Run(fmt.Sprintf("%s/%s", dev.Name, lv.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m, err := riscvmem.RunStream(dev, riscvmem.StreamConfig{
						Test: riscvmem.StreamTriad, Elems: lv.Elems,
						Cores: lv.Cores, Reps: 1, ScaleBy: lv.ScaleBy,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(m.Best.GBps(), "GB/s")
				}
			})
		}
	}
}

// BenchmarkFig2Transpose regenerates Fig. 2: the five transposition variants
// per device (simulated seconds and speedup over naive as metrics).
func BenchmarkFig2Transpose(b *testing.B) {
	n := riscvmem.PaperMatrixSmall / benchScale
	for _, dev := range riscvmem.Devices() {
		var naive float64
		for _, v := range riscvmem.TransposeVariants() {
			b.Run(fmt.Sprintf("%s/%s", dev.Name, v), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := riscvmem.RunTranspose(dev, riscvmem.TransposeConfig{N: n, Variant: v})
					if err != nil {
						b.Fatal(err)
					}
					if v == riscvmem.TransposeNaive {
						naive = res.Seconds
					}
					b.ReportMetric(res.Seconds, "sim-s")
					if naive > 0 {
						b.ReportMetric(naive/res.Seconds, "speedup")
					}
				}
			})
		}
	}
}

// BenchmarkFig3Utilization regenerates Fig. 3: transpose memory-bandwidth
// utilization (naive and best variant per device).
func BenchmarkFig3Utilization(b *testing.B) {
	suite := riscvmem.NewSuite(riscvmem.Options{Scale: benchScale, Reps: 1})
	b.Run("suite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := suite.Fig3(nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				if !r.Skipped {
					b.ReportMetric(r.Utilization, fmt.Sprintf("util-%s-N%d-%s", r.Device, r.PaperN, r.Variant))
				}
			}
		}
	})
}

// BenchmarkFig6Blur regenerates Fig. 6: the five Gaussian-blur variants per
// device.
func BenchmarkFig6Blur(b *testing.B) {
	w := riscvmem.PaperImageW / benchScale
	h := riscvmem.PaperImageH / benchScale
	for _, dev := range riscvmem.Devices() {
		var naive float64
		for _, v := range riscvmem.BlurVariants() {
			b.Run(fmt.Sprintf("%s/%s", dev.Name, v), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := riscvmem.RunBlur(dev, riscvmem.BlurConfig{
						W: w, H: h, C: riscvmem.PaperImageC, F: riscvmem.PaperFilter, Variant: v,
					})
					if err != nil {
						b.Fatal(err)
					}
					if v == riscvmem.BlurNaive {
						naive = res.Seconds
					}
					b.ReportMetric(res.Seconds, "sim-s")
					if naive > 0 {
						b.ReportMetric(naive/res.Seconds, "speedup")
					}
				}
			})
		}
	}
}

// BenchmarkFig7BlurUtilization regenerates Fig. 7: blur bandwidth
// utilization for the three optimized variants.
func BenchmarkFig7BlurUtilization(b *testing.B) {
	suite := riscvmem.NewSuite(riscvmem.Options{Scale: benchScale, Reps: 1})
	b.Run("suite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := suite.Fig7(nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				b.ReportMetric(r.Utilization, fmt.Sprintf("util-%s-%s", r.Device, r.Variant))
			}
		}
	})
}

// BenchmarkAblationPrefetch isolates the Fig. 6 "Unit-stride" anomaly: the
// VisionFive's aggressive prefetcher on its starved memory channel. The
// same streaming blur runs with and without the hardware prefetcher.
func BenchmarkAblationPrefetch(b *testing.B) {
	run := func(b *testing.B, dev riscvmem.Device) {
		for i := 0; i < b.N; i++ {
			res, err := riscvmem.RunBlur(dev, riscvmem.BlurConfig{
				W: 318, H: 253, C: 3, F: 19, Variant: riscvmem.BlurUnitStride,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Seconds, "sim-s")
		}
	}
	withPF := riscvmem.VisionFive()
	b.Run("VisionFive/prefetch=on", func(b *testing.B) { run(b, withPF) })
	noPF := riscvmem.VisionFive()
	noPF.Mem.NewPrefetcher = nil
	b.Run("VisionFive/prefetch=off", func(b *testing.B) { run(b, noPF) })
}

// BenchmarkAblationBlockSize sweeps the transposition tile edge on the
// Raspberry Pi 4 — the design-choice knob behind the Blocking variants.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, blk := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("block=%d", blk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := riscvmem.RunTranspose(riscvmem.RaspberryPi4(), riscvmem.TransposeConfig{
					N: 512, Variant: riscvmem.TransposeManualBlocking, Block: blk,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Seconds, "sim-s")
			}
		})
	}
}

// BenchmarkAblationSchedule contrasts static and dynamic scheduling on the
// triangular block-row workload (the Manual_blocking → Dynamic step).
func BenchmarkAblationSchedule(b *testing.B) {
	for _, v := range []riscvmem.TransposeVariant{riscvmem.TransposeManualBlocking, riscvmem.TransposeDynamic} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := riscvmem.RunTranspose(riscvmem.XeonServer(), riscvmem.TransposeConfig{
					N: 1024, Variant: v,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Seconds, "sim-s")
			}
		})
	}
}

// BenchmarkAblationCacheOblivious compares the paper's tuned Blocking
// variant against the cache-oblivious recursive transpose of the paper's
// reference [24] (Chatterjee & Sen) — the "no tuning knob" alternative.
func BenchmarkAblationCacheOblivious(b *testing.B) {
	for _, dev := range riscvmem.Devices() {
		for _, v := range []riscvmem.TransposeVariant{riscvmem.TransposeBlocking, transpose.CacheOblivious} {
			b.Run(fmt.Sprintf("%s/%s", dev.Name, v), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := riscvmem.RunTranspose(dev, riscvmem.TransposeConfig{N: 512, Variant: v})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Seconds, "sim-s")
				}
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (host time per
// simulated access) — the engineering number that bounds paper-scale runs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	dev := riscvmem.MangoPiD1()
	m, err := riscvmem.NewMachine(dev)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := m.NewF64(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	m.RunSeq(func(c *riscvmem.Core) {
		for i := 0; i < b.N; i++ {
			arr.Load(c, i&(1<<16-1))
		}
	})
}

// BenchmarkTouchRangeThroughput measures the same streaming element-access
// pattern as BenchmarkSimulatorThroughput charged through the bulk range
// API (F64.LoadRange → Core.TouchRange): one fused lookup per cache line
// instead of per element. ns/op is still host time per simulated element.
func BenchmarkTouchRangeThroughput(b *testing.B) {
	dev := riscvmem.MangoPiD1()
	m, err := riscvmem.NewMachine(dev)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 16
	arr, err := m.NewF64(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	m.RunSeq(func(c *riscvmem.Core) {
		for done := 0; done < b.N; {
			chunk := n
			if left := b.N - done; left < chunk {
				chunk = left
			}
			arr.LoadRange(c, 0, chunk)
			done += chunk
		}
	})
}

// BenchmarkParallelRangeThroughput measures multi-core streaming through the
// engine-serialized batched miss pipeline: every VisionFive core TouchRanges
// its static share of a shared array via Machine.ParallelRange, so line
// batching, the discrete-event ordering of the shared miss path and the
// prefetcher streak all run together. ns/op is host time per simulated
// element summed over the cores.
func BenchmarkParallelRangeThroughput(b *testing.B) {
	dev := riscvmem.VisionFive()
	m, err := riscvmem.NewMachine(dev)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 16
	arr, err := m.NewF64(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for done := 0; done < b.N; {
		chunk := n
		if left := b.N - done; left < chunk {
			chunk = left
		}
		m.ParallelRange(dev.Cores, chunk, riscvmem.Static, 0, func(c *riscvmem.Core, lo, hi int) {
			arr.LoadRange(c, lo, hi)
		})
		done += chunk
	}
}

// Compile-time check that the hier types remain exported for custom devices
// (used by examples/customdevice).
var _ = hier.Level{}
