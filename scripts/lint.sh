#!/usr/bin/env bash
# One-shot local mirror of the CI lint job: go vet and the simlint analyzer
# suite in both build variants (the production build and the -tags
# faultinject chaos build — they compile different files, so each must be
# analyzed on its own), then staticcheck and govulncheck when installed.
# The last two are skipped with a notice rather than failed when absent,
# so the script works in offline sandboxes; CI installs them and runs all
# four unconditionally.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...
go vet -tags faultinject ./...

echo "== simlint"
go run ./cmd/simlint ./...
go run ./cmd/simlint -tags faultinject ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping (CI runs it)"
fi

if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck"
    govulncheck ./...
else
    echo "== govulncheck not installed; skipping (CI runs it)"
fi

echo "lint clean"
