#!/usr/bin/env bash
# Collect CPU (and optionally heap) profiles of the simulator under a real
# workload, so the next performance PR starts from data instead of guesswork.
#
# Usage:
#   scripts/profile.sh                    # profile the TouchRange benchmark
#   scripts/profile.sh bench [pattern]    # profile a benchmark (default Throughput)
#   scripts/profile.sh stream [args...]   # profile cmd/stream (args forwarded)
#   scripts/profile.sh sweep  [args...]   # profile cmd/sweep  (args forwarded)
#
# Profiles land in ./profiles/<mode>.{cpu,mem}.pprof; the script prints the
# top CPU consumers and the `go tool pprof` line to dig further.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-bench}"
[ "$#" -gt 0 ] && shift
out="profiles"
mkdir -p "$out"

case "$mode" in
bench)
    pattern="${1:-TouchRangeThroughput}"
    go test -run '^$' -bench "$pattern" -benchtime "${BENCHTIME:-100000000x}" \
        -cpuprofile "$out/bench.cpu.pprof" -memprofile "$out/bench.mem.pprof" . >/dev/null
    cpu="$out/bench.cpu.pprof"
    ;;
stream)
    go run ./cmd/stream -cpuprofile "$out/stream.cpu.pprof" \
        -memprofile "$out/stream.mem.pprof" "$@" >/dev/null
    cpu="$out/stream.cpu.pprof"
    ;;
sweep)
    # A default sweep that exercises the batched miss pipeline and the
    # memoized runner; any explicit args replace it.
    if [ "$#" -eq 0 ]; then
        set -- -device MangoPi -axis maxinflight=1,2,4,8 \
            -workloads 'stream:test=TRIAD,elems=65536; transpose:variant=Naive,n=512'
    fi
    go run ./cmd/sweep -cpuprofile "$out/sweep.cpu.pprof" \
        -memprofile "$out/sweep.mem.pprof" "$@" >/dev/null
    cpu="$out/sweep.cpu.pprof"
    ;;
*)
    echo "profile.sh: unknown mode '$mode' (bench, stream, sweep)" >&2
    exit 1
    ;;
esac

echo "== top CPU consumers ($cpu) =="
go tool pprof -top -nodecount=15 "$cpu" | tail -n +8
echo
echo "dig further: go tool pprof -http=: $cpu"
