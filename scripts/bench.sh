#!/usr/bin/env bash
# Record simulator throughput in BENCH_simthroughput.json so the perf
# trajectory is tracked across PRs. Appends one record per run with the
# current commit, date, ns/op of the two single-core streaming benchmarks,
# the multi-core ParallelRange streaming benchmark (engine-serialized
# batched miss pipeline), the batched-runner throughput — cold (every job
# simulates) vs cached (the memoized Runner replays the identical 8-job
# batch with zero new simulations) — the service-layer request throughput
# (the same warm 8-job batch as a full BatchRequest through the Service
# facade), the restart-warm path (a fresh Service over a persisted
# cache directory serving an 8-cell batch entirely from the disk tier),
# and the clustered sweep (an in-process coordinator fanning a warm
# 16-cell sweep across two workers; ns per cell of control-plane cost).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-100000000x}"
PRANGE_BENCHTIME="${PRANGE_BENCHTIME:-20000000x}"
RUNNER_BENCHTIME="${RUNNER_BENCHTIME:-30x}"
CACHED_BENCHTIME="${CACHED_BENCHTIME:-20000x}"
RESTART_BENCHTIME="${RESTART_BENCHTIME:-500x}"
CLUSTER_BENCHTIME="${CLUSTER_BENCHTIME:-20x}"
OUT="BENCH_simthroughput.json"

raw=$(go test -run '^$' -bench 'BenchmarkSimulatorThroughput$|BenchmarkTouchRangeThroughput$' \
    -benchtime "$BENCHTIME" -count "$COUNT" . | grep ns/op)
rawprange=$(go test -run '^$' -bench 'BenchmarkParallelRangeThroughput$' \
    -benchtime "$PRANGE_BENCHTIME" -count "$COUNT" . | grep ns/op)
rawrunner=$(go test -run '^$' -bench 'BenchmarkRunnerBatch$' \
    -benchtime "$RUNNER_BENCHTIME" -count "$COUNT" ./internal/run | grep ns/op)
rawcached=$(go test -run '^$' -bench 'BenchmarkRunnerBatchCached$' \
    -benchtime "$CACHED_BENCHTIME" -count "$COUNT" ./internal/run | grep ns/op)
rawservice=$(go test -run '^$' -bench 'BenchmarkServiceBatch$' \
    -benchtime "$CACHED_BENCHTIME" -count "$COUNT" ./internal/service | grep ns/op)
rawrestart=$(go test -run '^$' -bench 'BenchmarkServiceRestartWarm$' \
    -benchtime "$RESTART_BENCHTIME" -count "$COUNT" ./internal/service | grep ns/op)
rawcluster=$(go test -run '^$' -bench 'BenchmarkClusterSweep$' \
    -benchtime "$CLUSTER_BENCHTIME" -count "$COUNT" ./internal/cluster | grep 'ns/cell')

median() {
    echo "$2" | awk -v name="$1" '$1 ~ name {print $3}' | sort -n |
        awk '{a[NR]=$1} END {print (NR%2 ? a[(NR+1)/2] : (a[NR/2]+a[NR/2+1])/2)}'
}

# median_metric extracts the value preceding a custom ReportMetric unit
# (e.g. "ns/cell") rather than the fixed ns/op column.
median_metric() {
    echo "$2" | awk -v unit="$1" '{for (i = 1; i < NF; i++) if ($(i + 1) == unit) print $i}' |
        sort -n | awk '{a[NR]=$1} END {print (NR%2 ? a[(NR+1)/2] : (a[NR/2]+a[NR/2+1])/2)}'
}

legacy=$(median '^BenchmarkSimulatorThroughput' "$raw") \
trange=$(median '^BenchmarkTouchRangeThroughput' "$raw") \
prange=$(median '^BenchmarkParallelRangeThroughput' "$rawprange") \
runner=$(median '^BenchmarkRunnerBatch(-|$)' "$rawrunner") \
cached=$(median '^BenchmarkRunnerBatchCached' "$rawcached") \
service=$(median '^BenchmarkServiceBatch' "$rawservice") \
restart=$(median '^BenchmarkServiceRestartWarm' "$rawrestart") \
cluster=$(median_metric 'ns/cell' "$rawcluster") \
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown) \
OUT="$OUT" COUNT="$COUNT" python3 - <<'EOF'
import datetime
import json
import os

out = os.environ["OUT"]
record = {
    "date": datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    "commit": os.environ["commit"],
    "simulator_throughput_ns_per_op": float(os.environ["legacy"]),
    "touchrange_throughput_ns_per_op": float(os.environ["trange"]),
    "parallelrange_throughput_ns_per_op": float(os.environ["prange"]),
    "runner_batch_ns_per_op": float(os.environ["runner"]),
    "runner_batch_cached_ns_per_op": float(os.environ["cached"]),
    "service_request_ns_per_op": float(os.environ["service"]),
    "service_restart_warm_ns_per_op": float(os.environ["restart"]),
    "cluster_sweep_ns_per_cell": float(os.environ["cluster"]),
    "count": int(os.environ["COUNT"]),
}
try:
    with open(out) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {
        "benchmark": "BenchmarkSimulatorThroughput (MangoPi streaming loads, "
                     "host ns per simulated access)",
        "baseline_ns_per_op": 18.84,
        "records": [],
    }
doc.setdefault("records", []).append(record)
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded: legacy={record['simulator_throughput_ns_per_op']} ns/op, "
      f"touchrange={record['touchrange_throughput_ns_per_op']} ns/op, "
      f"parallelrange={record['parallelrange_throughput_ns_per_op']} ns/op, "
      f"runner_batch={record['runner_batch_ns_per_op']} ns/batch, "
      f"runner_batch_cached={record['runner_batch_cached_ns_per_op']} ns/batch, "
      f"service_request={record['service_request_ns_per_op']} ns/req, "
      f"service_restart_warm={record['service_restart_warm_ns_per_op']} ns/req, "
      f"cluster_sweep={record['cluster_sweep_ns_per_cell']} ns/cell -> {out}")
EOF
