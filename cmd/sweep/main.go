// Command sweep runs declarative device-parameter ablations: named axes
// mutate a base device preset, the axis cross-product is expanded into
// cells, and every cell × workload executes as one batch on the memoized
// pooled runner. Each row reports the cell's time, its speedup over the
// unmutated base cell, and its bandwidth ratio against it.
//
// Usage:
//
//	sweep -device MangoPi -axis maxinflight=1,2,4,8,16 -axis l2=off,base,1MiB
//	      [-workloads "transpose:variant=Naive,n=512; stream/TRIAD"]
//	      [-n 512] [-elems 65536] [-reps 2] [-image 318x253x3] [-filter 19]
//	      [-format table|csv|json] [-cpuprofile FILE] [-memprofile FILE]
//	      [-cache-dir DIR] [-cache-stats]
//
// With -cache-dir the sweep reads and writes the same persistent result
// cache cmd/simd uses: cells a previous run (or a running daemon) already
// simulated are served from disk, and this run's cells are persisted for
// the next. -cache-stats prints tier-labelled cache counters to stderr
// after the sweep (how much came from memory, disk, or fresh simulation).
//
// Axis grammar (every axis also accepts the literal value "base", meaning
// "leave the parameter at the preset's value"):
//
//	l2=off|<size>        L2 capacity (adds one to devices without), e.g. 128KiB
//	maxinflight=<n>      per-core MSHR count (outstanding fills)
//	l1ways=<n>           L1 associativity
//	policy=<p>           replacement policy for all levels: LRU, Random, FIFO, PLRU
//	missoverlap=<f>      exposed-miss-latency factor in (0,1]
//	channels=<n>         DRAM channels
//	dramlat=<cycles>     DRAM access latency
//	prefdist=<n>         stride prefetcher max look-ahead distance
//	preframp=on|off      automatic prefetch-distance ramping
//	pref=off             disable prefetching
//
// Workloads use the spec grammar — kernel[:key=value,...], the same data
// form simd requests carry — separated by ';' or whitespace (parameters
// contain commas): "stream:test=TRIAD,elems=65536; transpose:variant=Naive".
// The kernel/variant shorthand (stream/TRIAD, transpose/Blocking,
// gblur/Memory) and registered custom workload names are accepted too, and
// a shorthand-only list may keep the legacy comma separation. The -n,
// -elems, -reps, -image and -filter flags fill in any size parameter a spec
// leaves unset.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"riscvmem/internal/machine"
	"riscvmem/internal/profiling"
	"riscvmem/internal/report"
	"riscvmem/internal/run"
	"riscvmem/internal/sweep"
)

// axisFlags collects repeated -axis declarations.
type axisFlags []sweep.Axis

func (a *axisFlags) String() string { return fmt.Sprintf("%d axes", len(*a)) }

func (a *axisFlags) Set(s string) error {
	ax, err := sweep.ParseAxis(s)
	if err != nil {
		return err
	}
	*a = append(*a, ax)
	return nil
}

// workloadSizes carries the size flags that act as spec-parameter defaults.
type workloadSizes struct {
	n, elems, reps, filter int
	imgW, imgH, imgC       int
}

// defaults returns the per-kernel parameters the size flags stand in for
// when a spec leaves them unset.
func (sz workloadSizes) defaults(kernel string) map[string]string {
	switch kernel {
	case "stream":
		return map[string]string{"elems": strconv.Itoa(sz.elems), "reps": strconv.Itoa(sz.reps)}
	case "transpose":
		return map[string]string{"n": strconv.Itoa(sz.n)}
	case "gblur":
		return map[string]string{"w": strconv.Itoa(sz.imgW), "h": strconv.Itoa(sz.imgH),
			"c": strconv.Itoa(sz.imgC), "f": strconv.Itoa(sz.filter)}
	}
	return nil
}

// splitWorkloads tokenizes the -workloads value. Specs are separated by
// ';' or whitespace, since parameters contain commas; a list without any
// ':' has no parameters, so the legacy comma separation of shorthand names
// ("transpose/Naive,stream/TRIAD") still splits.
func splitWorkloads(s string) []string {
	seps := func(r rune) bool { return r == ';' || r == ' ' || r == '\t' }
	if !strings.Contains(s, ":") {
		seps = func(r rune) bool { return r == ';' || r == ' ' || r == '\t' || r == ',' }
	}
	return strings.FieldsFunc(s, seps)
}

// parseWorkload resolves one spec string into a Workload, overlaying the
// size-flag defaults onto parameters the spec does not set.
func parseWorkload(name string, sz workloadSizes) (run.Workload, error) {
	spec, err := run.ParseWorkloadSpec(name)
	if err != nil {
		return nil, err
	}
	for k, v := range sz.defaults(spec.Kernel) {
		if _, set := spec.Params[k]; !set {
			spec = spec.With(k, v)
		}
	}
	return run.NewWorkload(spec)
}

func main() {
	device := flag.String("device", "MangoPi", "base device preset to ablate")
	var axes axisFlags
	flag.Var(&axes, "axis", "sweep axis as name=v1,v2,... (repeatable); axes: "+
		strings.Join(sweep.AxisNames(), ", "))
	workloads := flag.String("workloads", "transpose/Naive",
		"workload specs (kernel[:key=value,...]) to run in every cell, ';'-separated")
	n := flag.Int("n", 512, "transpose matrix dimension")
	elems := flag.Int("elems", 65536, "STREAM per-array element count")
	reps := flag.Int("reps", 2, "STREAM timed repetitions (best kept)")
	image := flag.String("image", "318x253x3", "gblur image size as WxHxC")
	filter := flag.Int("filter", 19, "gblur odd filter size")
	format := flag.String("format", "table", "output format: table, csv or json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory shared with simd; empty = memory-only")
	cacheStats := flag.Bool("cache-stats", false, "print tier-labelled cache counters to stderr after the sweep")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	defer stopProf()
	// os.Exit skips defers: later failures flush the profiles explicitly so
	// a failed run never leaves a truncated CPU profile behind.
	fail = func(err error) {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		stopProf()
		os.Exit(1)
	}

	base, err := machine.ByName(*device)
	if err != nil {
		fail(err)
	}
	sz := workloadSizes{n: *n, elems: *elems, reps: *reps, filter: *filter}
	if _, err := fmt.Sscanf(*image, "%dx%dx%d", &sz.imgW, &sz.imgH, &sz.imgC); err != nil {
		fail(fmt.Errorf("bad -image %q: want WxHxC", *image))
	}
	var ws []run.Workload
	for _, name := range splitWorkloads(*workloads) {
		w, err := parseWorkload(name, sz)
		if err != nil {
			fail(err)
		}
		ws = append(ws, w)
	}
	if len(ws) == 0 {
		fail(fmt.Errorf("no workloads given"))
	}

	store, err := run.OpenStore(*cacheDir, 0, func(f string, args ...any) {
		fmt.Fprintf(os.Stderr, "sweep: "+f+"\n", args...)
	})
	if err != nil {
		fail(err)
	}
	runner := run.New(run.Options{Store: store})

	res, err := sweep.Run(context.Background(), sweep.Config{
		Base: base, Axes: axes, Workloads: ws, Runner: runner,
	})
	if err != nil {
		fail(err)
	}
	if err := report.Emit(os.Stdout, *format, res.Table()); err != nil {
		fail(err)
	}
	if *cacheStats {
		hits, misses := runner.CacheStats()
		ts := runner.TierStats()
		fmt.Fprintf(os.Stderr,
			"sweep: cache: %d hits, %d misses (simulated); memory tier %d hits / %d misses, disk tier %d hits / %d misses, %d persisted, %d corrupt, %d persist errors\n",
			hits, misses, ts.MemoryHits, ts.MemoryMisses, ts.DiskHits, ts.DiskMisses,
			ts.DiskWrites, ts.DiskCorrupt, ts.DiskWriteErrors)
	}
}
