// Command sweep runs declarative device-parameter ablations: named axes
// mutate a base device preset, the axis cross-product is expanded into
// cells, and every cell × workload executes as one batch on the memoized
// pooled runner. Each row reports the cell's time, its speedup over the
// unmutated base cell, and its bandwidth ratio against it.
//
// Usage:
//
//	sweep -device MangoPi -axis maxinflight=1,2,4,8,16 -axis l2=off,base,1MiB
//	      [-workloads transpose/Naive,stream/TRIAD] [-n 512] [-elems 65536]
//	      [-reps 2] [-image 318x253x3] [-filter 19] [-format table|csv|json]
//
// Axis grammar (every axis also accepts the literal value "base", meaning
// "leave the parameter at the preset's value"):
//
//	l2=off|<size>        L2 capacity (adds one to devices without), e.g. 128KiB
//	maxinflight=<n>      per-core MSHR count (outstanding fills)
//	l1ways=<n>           L1 associativity
//	policy=<p>           replacement policy for all levels: LRU, Random, FIFO, PLRU
//	missoverlap=<f>      exposed-miss-latency factor in (0,1]
//	channels=<n>         DRAM channels
//	dramlat=<cycles>     DRAM access latency
//	prefdist=<n>         stride prefetcher max look-ahead distance
//	preframp=on|off      automatic prefetch-distance ramping
//	pref=off             disable prefetching
//
// Workloads are kernel/variant names: stream/{COPY,SCALE,SUM,TRIAD},
// transpose/{Naive,Parallel,Blocking,Manual_blocking,Dynamic},
// gblur/{Naive,Unit-stride,1D_kernels,Memory,Parallel}, or the name of any
// workload registered through the library's registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/report"
	"riscvmem/internal/run"
	"riscvmem/internal/sweep"
)

// axisFlags collects repeated -axis declarations.
type axisFlags []sweep.Axis

func (a *axisFlags) String() string { return fmt.Sprintf("%d axes", len(*a)) }

func (a *axisFlags) Set(s string) error {
	ax, err := sweep.ParseAxis(s)
	if err != nil {
		return err
	}
	*a = append(*a, ax)
	return nil
}

// workloadSizes carries the size flags the workload grammar resolves
// against.
type workloadSizes struct {
	n, elems, reps, filter int
	imgW, imgH, imgC       int
}

// parseWorkload resolves one kernel/variant name into a Workload.
func parseWorkload(name string, sz workloadSizes) (run.Workload, error) {
	kernel, variant, _ := strings.Cut(name, "/")
	switch kernel {
	case "stream":
		for _, t := range stream.Tests() {
			if strings.EqualFold(variant, t.String()) {
				return run.Stream(stream.Config{Test: t, Elems: sz.elems, Reps: sz.reps}), nil
			}
		}
	case "transpose":
		for _, v := range transpose.Variants() {
			if strings.EqualFold(variant, v.String()) {
				return run.Transpose(transpose.Config{N: sz.n, Variant: v}), nil
			}
		}
	case "gblur":
		for _, v := range blur.Variants() {
			if strings.EqualFold(variant, v.String()) {
				return run.Blur(blur.Config{W: sz.imgW, H: sz.imgH, C: sz.imgC,
					F: sz.filter, Variant: v}), nil
			}
		}
	}
	// Fall back to the process-wide registry for custom workloads.
	if w, err := run.Lookup(name); err == nil {
		return w, nil
	}
	return nil, fmt.Errorf("unknown workload %q (want stream/<test>, transpose/<variant>, gblur/<variant> or a registered name)", name)
}

func main() {
	device := flag.String("device", "MangoPi", "base device preset to ablate")
	var axes axisFlags
	flag.Var(&axes, "axis", "sweep axis as name=v1,v2,... (repeatable); axes: "+
		strings.Join(sweep.AxisNames(), ", "))
	workloads := flag.String("workloads", "transpose/Naive",
		"comma-separated kernel/variant workloads to run in every cell")
	n := flag.Int("n", 512, "transpose matrix dimension")
	elems := flag.Int("elems", 65536, "STREAM per-array element count")
	reps := flag.Int("reps", 2, "STREAM timed repetitions (best kept)")
	image := flag.String("image", "318x253x3", "gblur image size as WxHxC")
	filter := flag.Int("filter", 19, "gblur odd filter size")
	format := flag.String("format", "table", "output format: table, csv or json")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	base, err := machine.ByName(*device)
	if err != nil {
		fail(err)
	}
	sz := workloadSizes{n: *n, elems: *elems, reps: *reps, filter: *filter}
	if _, err := fmt.Sscanf(*image, "%dx%dx%d", &sz.imgW, &sz.imgH, &sz.imgC); err != nil {
		fail(fmt.Errorf("bad -image %q: want WxHxC", *image))
	}
	var ws []run.Workload
	for _, name := range strings.Split(*workloads, ",") {
		w, err := parseWorkload(strings.TrimSpace(name), sz)
		if err != nil {
			fail(err)
		}
		ws = append(ws, w)
	}

	res, err := sweep.Run(context.Background(), sweep.Config{
		Base: base, Axes: axes, Workloads: ws,
	})
	if err != nil {
		fail(err)
	}
	if err := report.Emit(os.Stdout, *format, res.Table()); err != nil {
		fail(err)
	}
}
