// Command memo operates on a persistent result-cache directory — the same
// store cmd/simd fills when started with -cache-dir. It moves warm caches
// between machines (export on the build box, import on the fleet), audits
// what is cached, and reclaims dead weight after a model-version bump.
//
// Usage:
//
//	memo ls     -dir DIR [-damaged]        list entries (read-only)
//	memo export -dir DIR [-o FILE]         write a snapshot stream (default stdout)
//	memo import -dir DIR [-i FILE]         install a snapshot stream (default stdin)
//	memo gc     -dir DIR [-stale] [-dry-run]  reclaim quarantine, temp files, stale versions
//
// A snapshot is self-validating: each line carries the entry's version
// namespace and checksum, import re-verifies everything end to end, and
// damaged lines are skipped and counted rather than installed. `gc -stale`
// removes every entry that does not belong to the current model version
// (run.CacheVersion) — the cleanup half of the cache-versioning contract.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"riscvmem/internal/memostore"
	"riscvmem/internal/run"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "ls":
		err = cmdLs(args)
	case "export":
		err = cmdExport(args)
	case "import":
		err = cmdImport(args)
	case "gc":
		err = cmdGC(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "memo: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "memo:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `memo operates on a simd persistent result cache (simd -cache-dir).

  memo ls     -dir DIR [-damaged]           list cached entries
  memo export -dir DIR [-o FILE]            write a snapshot stream
  memo import -dir DIR [-i FILE]            install a snapshot stream
  memo gc     -dir DIR [-stale] [-dry-run]  reclaim dead weight

Current model version: %s
`, run.CacheVersion)
}

// openDisk opens the store named by the common -dir flag (required).
func openDisk(dir string) (*memostore.Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("-dir is required")
	}
	d, err := memostore.OpenDisk(dir, run.ResultCodec())
	if err != nil {
		return nil, err
	}
	d.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "memo: "+format+"\n", args...)
	}
	return d, nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("memo ls", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	damaged := fs.Bool("damaged", false, "list only entries that fail validation")
	full := fs.Bool("full", false, "print the full device identity string, not just the device name")
	fs.Parse(args)
	d, err := openDisk(*dir)
	if err != nil {
		return err
	}
	entries, bytes, bad := 0, int64(0), 0
	err = d.Walk(func(info memostore.EntryInfo) error {
		if info.Err != nil {
			bad++
			fmt.Printf("DAMAGED  %s: %v\n", info.Path, info.Err)
			return nil
		}
		entries++
		bytes += info.Size
		if !*damaged {
			stale := ""
			if info.Key.Version != run.CacheVersion {
				stale = "  [stale version]"
			}
			device := info.Key.Device
			if !*full {
				device = deviceName(device)
			}
			fmt.Printf("%-12s %8d B  %-14s %s%s\n",
				info.Key.Version, info.Size, device, info.Key.Workload, stale)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "memo: %d entries, %d bytes, %d damaged (version %s)\n",
		entries, bytes, bad, run.CacheVersion)
	return nil
}

// deviceName extracts the preset name from a device identity string — the
// key stores the full rendered identity (`machine.identity{name:"Xeon",
// ...}`) so that parameter changes address different entries, but for a
// listing the name is what a human wants.
func deviceName(identity string) string {
	const marker = `name:"`
	i := strings.Index(identity, marker)
	if i < 0 {
		return identity
	}
	rest := identity[i+len(marker):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return identity
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("memo export", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	d, err := openDisk(*dir)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	stats, err := d.Export(w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "memo: exported %d entries (%d damaged entries skipped)\n",
		stats.Entries, stats.Skipped)
	return nil
}

func cmdImport(args []string) error {
	fs := flag.NewFlagSet("memo import", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	in := fs.String("i", "", "input file (default stdin)")
	fs.Parse(args)
	d, err := openDisk(*dir)
	if err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	stats, err := d.Import(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "memo: imported %d new, replaced %d, skipped %d invalid\n",
		stats.Added, stats.Replaced, stats.Invalid)
	return nil
}

func cmdGC(args []string) error {
	fs := flag.NewFlagSet("memo gc", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	stale := fs.Bool("stale", false, "also remove entries from other model versions (keep only "+run.CacheVersion+")")
	dryRun := fs.Bool("dry-run", false, "report what would be removed without removing it")
	fs.Parse(args)
	if *dryRun {
		// Dry run is a read-only walk: count what gc would touch.
		d, err := openDisk(*dir)
		if err != nil {
			return err
		}
		staleEntries := 0
		err = d.Walk(func(info memostore.EntryInfo) error {
			if info.Err == nil && *stale && info.Key.Version != run.CacheVersion {
				staleEntries++
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "memo: dry run: %d stale entries would be removed (plus quarantine and temp files)\n",
			staleEntries)
		return nil
	}
	d, err := openDisk(*dir)
	if err != nil {
		return err
	}
	keep := ""
	if *stale {
		keep = run.CacheVersion
	}
	stats, err := d.GC(keep)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "memo: removed %d quarantined, %d temp files, %d stale entries (%d stale versions)\n",
		stats.Quarantined, stats.TempFiles, stats.StaleEntries, stats.StaleVersions)
	return nil
}
