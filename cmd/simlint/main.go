// simlint is the repo's invariant multichecker: it loads the packages
// matching the given patterns (default ./...) and runs the custom
// go/analysis-style suite from internal/analyzers over them —
//
//	atomicmix    no field accessed both atomically and plainly
//	cachekey     canonical cache-key encoders name every Config field
//	ctxerr       errors.Is instead of ==/!= against sentinels
//	determinism  no wall clock / global rand / map-order leaks in model code
//	faultseam    faultinject used only through the zero-cost API
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -tags faultinject ./...
//	go run ./cmd/simlint -only ctxerr,determinism ./internal/...
//
// Exit status: 0 clean, 1 findings, 2 operational failure. Findings print
// as file:line:col: message [analyzer], one per line. Intentional
// exceptions are suppressed in source with
// `//simlint:allow <analyzer> -- reason` on or above the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"riscvmem/internal/analyzers"
	"riscvmem/internal/analyzers/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		tags = flag.String("tags", "", "build tags for the load (e.g. faultinject)")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	suite := analyzers.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			var unknown []string
			for name := range keep {
				unknown = append(unknown, name)
			}
			fmt.Fprintf(os.Stderr, "simlint: unknown analyzer(s) %s (see -list)\n", strings.Join(unknown, ", "))
			return 2
		}
		suite = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(analysis.Config{Tags: *tags}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
