// Command paperfigs regenerates the paper's figures (1, 2, 3, 6, 7) on the
// simulated devices and renders them as tables and ASCII bar charts, CSV,
// or JSON. The underlying Suite batches every figure's cross-product on a
// pooled runner.
//
// Usage:
//
//	paperfigs [-fig all|1|2|3|6|7] [-scale N] [-full] [-verify]
//	          [-format table|csv|json] [-device NAME]
//
// -scale divides the paper's workload sizes (default 8); -full is shorthand
// for -scale 1, the paper's exact sizes (expect a long run). -device limits
// the run to one machine. -csv is a deprecated alias for -format csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"riscvmem/internal/core"
	"riscvmem/internal/machine"
	"riscvmem/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 1, 2, 3, 6, 7, devices")
	scale := flag.Int("scale", 8, "divide paper workload sizes by this factor")
	full := flag.Bool("full", false, "paper-scale run (overrides -scale; slow)")
	verify := flag.Bool("verify", false, "verify kernel results against references")
	csv := flag.Bool("csv", false, "deprecated alias for -format csv")
	format := flag.String("format", "table", "output format: table, csv or json")
	device := flag.String("device", "", "restrict to one device (Xeon, RaspberryPi4, VisionFive, MangoPi)")
	flag.Parse()

	formatSet := false
	flag.Visit(func(f *flag.Flag) { formatSet = formatSet || f.Name == "format" })
	if *csv && !formatSet { // the alias never overrides an explicit -format
		*format = "csv"
	}
	switch *format {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (want table, csv or json)", *format))
	}

	opt := core.Options{Scale: *scale, Verify: *verify}
	if *full {
		opt.Scale = 1
	}
	if *device != "" {
		spec, err := machine.ByName(*device)
		if err != nil {
			fatal(err)
		}
		opt.Devices = []machine.Spec{spec}
	}
	s := core.NewSuite(opt)

	want := func(f string) bool { return *fig == "all" || *fig == f }
	if *fig == "devices" {
		printDevices(opt, *format)
		return
	}
	if want("1") {
		if err := fig1(s, *format); err != nil {
			fatal(err)
		}
	}
	var f2 []core.Fig2Row
	if want("2") || want("3") {
		var err error
		if f2, err = s.Fig2(); err != nil {
			fatal(err)
		}
	}
	if want("2") {
		fig2(s, f2, *format)
	}
	if want("3") {
		if err := fig3(s, f2, *format); err != nil {
			fatal(err)
		}
	}
	var f6 []core.Fig6Row
	if want("6") || want("7") {
		var err error
		if f6, err = s.Fig6(); err != nil {
			fatal(err)
		}
	}
	if want("6") {
		fig6(s, f6, *format)
	}
	if want("7") {
		if err := fig7(s, f6, *format); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}

// emitRows writes headers+rows as CSV or JSON (the machine-readable
// formats; table rendering stays figure-specific).
func emitRows(format string, headers []string, rows [][]string) error {
	return report.Emit(os.Stdout, format, report.Table{Headers: headers, Rows: rows})
}

func printDevices(opt core.Options, format string) {
	devs := opt.Devices
	if len(devs) == 0 {
		devs = machine.All()
	}
	t := report.Table{Title: "Devices (paper §3.1)", Headers: []string{"Name", "CPU", "Cores", "GHz", "RAM", "Peak DRAM"}}
	for _, d := range devs {
		t.Add(d.Name, d.CPU, strconv.Itoa(d.Cores),
			fmt.Sprintf("%.1f", d.FreqGHz), fmt.Sprintf("%d MiB", d.RAMBytes>>20),
			d.PeakDRAMBandwidth().String())
	}
	if err := report.Emit(os.Stdout, format, t); err != nil {
		fatal(err)
	}
}

func fig1(s *core.Suite, format string) error {
	cells, err := s.Fig1()
	if err != nil {
		return err
	}
	if format != "table" {
		rows := make([][]string, 0, len(cells))
		for _, c := range cells {
			rows = append(rows, []string{c.Device, c.Level, c.Test.String(),
				fmt.Sprintf("%.4f", c.BW.GBps())})
		}
		return emitRows(format, []string{"device", "level", "test", "gbps"}, rows)
	}
	fmt.Println("=== Fig. 1: STREAM bandwidth per memory level (GB/s) ===")
	ch := report.Chart{Unit: "GB/s", Width: 50, LogHint: true}
	for _, c := range cells {
		ch.Add(fmt.Sprintf("%s %s %s", c.Device, c.Level, c.Test), c.BW.GBps(), "")
	}
	ch.Render(os.Stdout)
	fmt.Println()
	return nil
}

func fig2(s *core.Suite, rows []core.Fig2Row, format string) {
	if format != "table" {
		out := make([][]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, []string{r.Device, strconv.Itoa(r.PaperN), strconv.Itoa(r.N),
				r.Variant.String(), fmt.Sprintf("%.6f", r.Seconds),
				fmt.Sprintf("%.3f", r.Speedup), strconv.FormatBool(r.Skipped)})
		}
		if err := emitRows(format, []string{"device", "paper_n", "n", "variant", "seconds", "speedup", "skipped"}, out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("=== Fig. 2: matrix transposition time (simulated, N scaled %d×) ===\n", s.Options().Scale)
	t := report.Table{Headers: []string{"Device", "Paper N", "Sim N", "Variant", "Seconds", "Speedup"}}
	for _, r := range rows {
		if r.Skipped {
			t.Add(r.Device, strconv.Itoa(r.PaperN), "-", r.Variant.String(), "(matrix does not fit in RAM)", "-")
			continue
		}
		t.Add(r.Device, strconv.Itoa(r.PaperN), strconv.Itoa(r.N), r.Variant.String(),
			fmt.Sprintf("%.6f", r.Seconds), fmt.Sprintf("%.2f×", r.Speedup))
	}
	t.Render(os.Stdout)
	fmt.Println()
}

func fig3(s *core.Suite, f2 []core.Fig2Row, format string) error {
	rows, err := s.Fig3(f2)
	if err != nil {
		return err
	}
	if format != "table" {
		out := make([][]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, []string{r.Device, strconv.Itoa(r.PaperN), r.Variant.String(),
				fmt.Sprintf("%.4f", r.Utilization), strconv.FormatBool(r.Skipped)})
		}
		return emitRows(format, []string{"device", "paper_n", "variant", "utilization", "skipped"}, out)
	}
	fmt.Println("=== Fig. 3: relative memory-bandwidth utilization (transpose) ===")
	ch := report.Chart{Width: 50}
	for _, r := range rows {
		if r.Skipped {
			continue
		}
		ch.Add(fmt.Sprintf("%s N=%d %s", r.Device, r.PaperN, r.Variant), r.Utilization, "")
	}
	ch.Render(os.Stdout)
	fmt.Println()
	return nil
}

func fig6(s *core.Suite, rows []core.Fig6Row, format string) {
	if format != "table" {
		out := make([][]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, []string{r.Device, r.Variant.String(),
				fmt.Sprintf("%.6f", r.Seconds), fmt.Sprintf("%.3f", r.Speedup)})
		}
		if err := emitRows(format, []string{"device", "variant", "seconds", "speedup"}, out); err != nil {
			fatal(err)
		}
		return
	}
	w, hgt := core.PaperImageW/s.Options().Scale, core.PaperImageH/s.Options().Scale
	fmt.Printf("=== Fig. 6: Gaussian blur time (%d×%d×%d image, F=%d) ===\n", w, hgt, core.PaperImageC, core.PaperFilter)
	t := report.Table{Headers: []string{"Device", "Variant", "Seconds", "Speedup"}}
	for _, r := range rows {
		t.Add(r.Device, r.Variant.String(), fmt.Sprintf("%.6f", r.Seconds), fmt.Sprintf("%.2f×", r.Speedup))
	}
	t.Render(os.Stdout)
	fmt.Println()
}

func fig7(s *core.Suite, f6 []core.Fig6Row, format string) error {
	rows, err := s.Fig7(f6)
	if err != nil {
		return err
	}
	if format != "table" {
		out := make([][]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, []string{r.Device, r.Variant.String(),
				fmt.Sprintf("%.4f", r.Utilization), fmt.Sprintf("%.3f", r.ImprovementOver1D)})
		}
		return emitRows(format, []string{"device", "variant", "utilization", "improvement_over_1d"}, out)
	}
	fmt.Println("=== Fig. 7: relative memory-bandwidth utilization (blur) ===")
	ch := report.Chart{Width: 50}
	for _, r := range rows {
		ch.Add(fmt.Sprintf("%s %s", r.Device, r.Variant), r.Utilization,
			fmt.Sprintf("%.2f× vs 1D", r.ImprovementOver1D))
	}
	ch.Render(os.Stdout)
	fmt.Println()
	return nil
}
