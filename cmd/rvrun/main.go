// Command rvrun assembles and executes a RISC-V assembly file (RV64IMFD +
// RVV subset) on a simulated device, reporting simulated time, retired
// instructions, and final register state.
//
// Usage:
//
//	rvrun [-device NAME] [-mem BYTES] [-max N] [-regs] file.s
//
// The program's data segment base address is passed in a0; programs finish
// with ecall.
package main

import (
	"flag"
	"fmt"
	"os"

	"riscvmem/internal/machine"
	"riscvmem/internal/riscv"
	"riscvmem/internal/sim"
)

func main() {
	device := flag.String("device", "MangoPi", "simulated device")
	mem := flag.Int("mem", 1<<20, "data memory size in bytes")
	maxInstr := flag.Uint64("max", 1<<30, "instruction budget")
	regs := flag.Bool("regs", false, "dump integer and float registers on exit")
	disasm := flag.Bool("disasm", false, "print the disassembled program and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvrun [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	spec, err := machine.ByName(*device)
	if err != nil {
		fatal(err)
	}
	prog, err := riscv.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *disasm {
		for _, line := range prog.DisassembleAll() {
			fmt.Println(line)
		}
		return
	}
	m, err := sim.New(spec)
	if err != nil {
		fatal(err)
	}
	emu, err := riscv.NewEmulator(prog, m, *mem)
	if err != nil {
		fatal(err)
	}
	emu.X[10] = emu.MemBase // a0 = data segment
	res, err := emu.Run(*maxInstr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("device:       %s\n", spec)
	fmt.Printf("instructions: %d\n", emu.Executed)
	fmt.Printf("cycles:       %.0f\n", res.Cycles)
	fmt.Printf("time:         %.9fs (simulated)\n", res.Seconds(spec))
	if *regs {
		for i := 0; i < 32; i += 4 {
			for j := i; j < i+4; j++ {
				fmt.Printf("x%-2d %#018x  ", j, emu.X[j])
			}
			fmt.Println()
		}
		for i := 0; i < 32; i += 4 {
			for j := i; j < i+4; j++ {
				fmt.Printf("f%-2d %-18g ", j, emu.F[j])
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvrun:", err)
	os.Exit(1)
}
