// Command rvrun assembles and executes a RISC-V assembly file (RV64IMFD +
// RVV subset) on a simulated device, reporting simulated time, retired
// instructions, and final register state. The program runs as a custom
// workload on the runner — the same execution path every other kernel uses.
//
// Usage:
//
//	rvrun [-device NAME] [-mem BYTES] [-max N] [-regs] file.s
//
// The program's data segment base address is passed in a0; programs finish
// with ecall.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"riscvmem/internal/machine"
	"riscvmem/internal/riscv"
	"riscvmem/internal/run"
	"riscvmem/internal/sim"
	"riscvmem/internal/units"
)

func main() {
	device := flag.String("device", "MangoPi", "simulated device")
	mem := flag.Int("mem", 1<<20, "data memory size in bytes")
	maxInstr := flag.Uint64("max", 1<<30, "instruction budget")
	regs := flag.Bool("regs", false, "dump integer and float registers on exit")
	disasm := flag.Bool("disasm", false, "print the disassembled program and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvrun [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	spec, err := machine.ByName(*device)
	if err != nil {
		fatal(err)
	}
	prog, err := riscv.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *disasm {
		for _, line := range prog.DisassembleAll() {
			fmt.Println(line)
		}
		return
	}
	// The assembled program as a Workload: the runner supplies the pooled
	// machine, the emulator charges its accesses to it, and the unified
	// Result carries the simulated time.
	var emu *riscv.Emulator
	workload := run.NewFunc("rvrun/"+filepath.Base(flag.Arg(0)),
		func(ctx context.Context, m *sim.Machine) (run.Result, error) {
			var err error
			emu, err = riscv.NewEmulator(prog, m, *mem)
			if err != nil {
				return run.Result{}, err
			}
			emu.X[10] = emu.MemBase // a0 = data segment
			res, err := emu.Run(*maxInstr)
			if err != nil {
				return run.Result{}, err
			}
			return run.Result{
				Cycles:  res.Cycles,
				Seconds: units.Seconds(res.Cycles, m.Spec().FreqGHz),
			}, nil
		})
	result, err := run.New(run.Options{}).RunOne(context.Background(), spec, workload)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("device:       %s\n", spec)
	fmt.Printf("instructions: %d\n", emu.Executed)
	fmt.Printf("cycles:       %.0f\n", result.Cycles)
	fmt.Printf("time:         %.9fs (simulated)\n", result.Seconds)
	if *regs {
		for i := 0; i < 32; i += 4 {
			for j := i; j < i+4; j++ {
				fmt.Printf("x%-2d %#018x  ", j, emu.X[j])
			}
			fmt.Println()
		}
		for i := 0; i < 32; i += 4 {
			for j := i; j < i+4; j++ {
				fmt.Printf("f%-2d %-18g ", j, emu.F[j])
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvrun:", err)
	os.Exit(1)
}
