// Command gblur runs the Gaussian blur study (§4.3) on a simulated device:
// one variant, or the full five-variant ladder.
//
// Usage:
//
//	gblur [-device NAME] [-w W] [-h H] [-c C] [-f F] [-variant NAME|all] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/machine"
	"riscvmem/internal/report"
)

func main() {
	device := flag.String("device", "VisionFive", "device name")
	w := flag.Int("w", 636, "image width (paper: 2544)")
	h := flag.Int("h", 507, "image height (paper: 2027)")
	c := flag.Int("c", 3, "channels")
	f := flag.Int("f", 19, "odd filter size (paper: 19)")
	variant := flag.String("variant", "all", "Naive, Unit-stride, 1D_kernels, Memory, Parallel or all")
	verify := flag.Bool("verify", false, "verify against the reference convolution")
	stats := flag.Bool("stats", false, "print memory-system counters per variant")
	flag.Parse()

	spec, err := machine.ByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gblur:", err)
		os.Exit(1)
	}
	var variants []blur.Variant
	for _, v := range blur.Variants() {
		if *variant == "all" || strings.EqualFold(*variant, v.String()) {
			variants = append(variants, v)
		}
	}
	if len(variants) == 0 {
		fmt.Fprintf(os.Stderr, "gblur: unknown variant %q\n", *variant)
		os.Exit(1)
	}

	headers := []string{"Variant", "Seconds", "Speedup"}
	if *stats {
		headers = append(headers, "L1 miss", "TLB walks", "DRAM MiB", "PF fills")
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Gaussian blur, %d×%d×%d F=%d on %s", *w, *h, *c, *f, spec),
		Headers: headers,
	}
	var naive float64
	for _, v := range variants {
		res, err := blur.Run(spec, blur.Config{W: *w, H: *h, C: *c, F: *f, Variant: v, Verify: *verify})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gblur:", err)
			os.Exit(1)
		}
		if v == blur.Naive {
			naive = res.Seconds
		}
		sp := "-"
		if naive > 0 {
			sp = strconv.FormatFloat(naive/res.Seconds, 'f', 2, 64) + "×"
		}
		row := []string{v.String(), fmt.Sprintf("%.6f", res.Seconds), sp}
		if *stats {
			row = append(row,
				fmt.Sprintf("%.1f%%", 100*res.Mem.L1MissRate()),
				strconv.FormatUint(res.Mem.TLBWalks, 10),
				fmt.Sprintf("%.1f", float64(res.Mem.DRAMBytes)/(1<<20)),
				strconv.FormatUint(res.Mem.PrefetchFills, 10))
		}
		tb.Add(row...)
	}
	tb.Render(os.Stdout)
}
