// Command gblur runs the Gaussian blur study (§4.3) on a simulated device:
// one variant, or the full five-variant ladder, batched on a pooled runner.
//
// Usage:
//
//	gblur [-device NAME] [-w W] [-h H] [-c C] [-f F] [-variant NAME|all]
//	      [-verify] [-stats] [-format table|csv|json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/machine"
	"riscvmem/internal/report"
	"riscvmem/internal/run"
)

func main() {
	device := flag.String("device", "VisionFive", "device name")
	w := flag.Int("w", 636, "image width (paper: 2544)")
	h := flag.Int("h", 507, "image height (paper: 2027)")
	c := flag.Int("c", 3, "channels")
	f := flag.Int("f", 19, "odd filter size (paper: 19)")
	variant := flag.String("variant", "all", "Naive, Unit-stride, 1D_kernels, Memory, Parallel or all")
	verify := flag.Bool("verify", false, "verify against the reference convolution")
	stats := flag.Bool("stats", false, "print memory-system counters per variant")
	format := flag.String("format", "table", "output format: table, csv or json")
	flag.Parse()

	spec, err := machine.ByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gblur:", err)
		os.Exit(1)
	}
	var variants []blur.Variant
	if *variant == "all" {
		variants = blur.Variants()
	} else {
		v, err := blur.VariantByName(*variant)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gblur:", err)
			os.Exit(1)
		}
		variants = []blur.Variant{v}
	}
	// Each variant goes through the data path — a WorkloadSpec materialized
	// by the kernel's factory — exactly as a simd request would.
	var workloads []run.Workload
	for _, v := range variants {
		wl, err := run.NewWorkload(run.WorkloadSpec{Kernel: "gblur", Params: map[string]string{
			"variant": v.String(),
			"w":       strconv.Itoa(*w),
			"h":       strconv.Itoa(*h),
			"c":       strconv.Itoa(*c),
			"f":       strconv.Itoa(*f),
			"verify":  strconv.FormatBool(*verify),
		}})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gblur:", err)
			os.Exit(1)
		}
		workloads = append(workloads, wl)
	}

	results, err := run.New(run.Options{}).Run(context.Background(),
		run.Cross([]machine.Spec{spec}, workloads))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gblur:", err)
		os.Exit(1)
	}

	headers := []string{"Variant", "Seconds", "Speedup"}
	if *stats {
		headers = append(headers, "L1 miss", "TLB walks", "DRAM MiB", "PF fills")
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Gaussian blur, %d×%d×%d F=%d on %s", *w, *h, *c, *f, spec),
		Headers: headers,
	}
	var naive run.Result
	for i, res := range results {
		if variants[i] == blur.Naive {
			naive = res
		}
		sp := "-"
		if naive.Seconds > 0 {
			sp = strconv.FormatFloat(res.SpeedupOver(naive), 'f', 2, 64) + "×"
		}
		row := []string{variants[i].String(), fmt.Sprintf("%.6f", res.Seconds), sp}
		if *stats {
			row = append(row,
				fmt.Sprintf("%.1f%%", 100*res.Mem.L1MissRate()),
				strconv.FormatUint(res.Mem.TLBWalks, 10),
				fmt.Sprintf("%.1f", float64(res.Mem.DRAMBytes)/(1<<20)),
				strconv.FormatUint(res.Mem.PrefetchFills, 10))
		}
		tb.Add(row...)
	}
	if err := report.Emit(os.Stdout, *format, tb); err != nil {
		fmt.Fprintln(os.Stderr, "gblur:", err)
		os.Exit(1)
	}
}
