// Command transpose runs the in-place matrix transposition study (§4.2) on a
// simulated device: one variant, or the full five-variant ladder.
//
// Usage:
//
//	transpose [-device NAME] [-n N] [-variant NAME|all] [-block B] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/report"
)

func main() {
	device := flag.String("device", "VisionFive", "device name")
	n := flag.Int("n", 1024, "matrix dimension")
	variant := flag.String("variant", "all", "Naive, Parallel, Blocking, Manual_blocking, Dynamic or all")
	block := flag.Int("block", 0, "tile edge; 0 = auto (fits L1)")
	verify := flag.Bool("verify", false, "verify the result matrix")
	stats := flag.Bool("stats", false, "print memory-system counters per variant")
	flag.Parse()

	spec, err := machine.ByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, "transpose:", err)
		os.Exit(1)
	}
	var variants []transpose.Variant
	for _, v := range transpose.Variants() {
		if *variant == "all" || strings.EqualFold(*variant, v.String()) {
			variants = append(variants, v)
		}
	}
	if len(variants) == 0 {
		fmt.Fprintf(os.Stderr, "transpose: unknown variant %q\n", *variant)
		os.Exit(1)
	}

	headers := []string{"Variant", "Seconds", "Speedup"}
	if *stats {
		headers = append(headers, "L1 miss", "TLB walks", "DRAM MiB", "PF fills")
	}
	tb := report.Table{
		Title:   fmt.Sprintf("In-place transposition, %d×%d doubles on %s", *n, *n, spec),
		Headers: headers,
	}
	var naive float64
	for _, v := range variants {
		res, err := transpose.Run(spec, transpose.Config{N: *n, Variant: v, Block: *block, Verify: *verify})
		if err != nil {
			fmt.Fprintln(os.Stderr, "transpose:", err)
			os.Exit(1)
		}
		if v == transpose.Naive {
			naive = res.Seconds
		}
		sp := "-"
		if naive > 0 {
			sp = strconv.FormatFloat(naive/res.Seconds, 'f', 2, 64) + "×"
		}
		row := []string{v.String(), fmt.Sprintf("%.6f", res.Seconds), sp}
		if *stats {
			row = append(row,
				fmt.Sprintf("%.1f%%", 100*res.Mem.L1MissRate()),
				strconv.FormatUint(res.Mem.TLBWalks, 10),
				fmt.Sprintf("%.1f", float64(res.Mem.DRAMBytes)/(1<<20)),
				strconv.FormatUint(res.Mem.PrefetchFills, 10))
		}
		tb.Add(row...)
	}
	tb.Render(os.Stdout)
}
