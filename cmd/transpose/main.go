// Command transpose runs the in-place matrix transposition study (§4.2) on a
// simulated device: one variant, or the full five-variant ladder, batched on
// a pooled runner.
//
// Usage:
//
//	transpose [-device NAME] [-n N] [-variant NAME|all] [-block B] [-verify]
//	          [-stats] [-format table|csv|json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/report"
	"riscvmem/internal/run"
)

func main() {
	device := flag.String("device", "VisionFive", "device name")
	n := flag.Int("n", 1024, "matrix dimension")
	variant := flag.String("variant", "all", "Naive, Parallel, Blocking, Manual_blocking, Dynamic or all")
	block := flag.Int("block", 0, "tile edge; 0 = auto (fits L1)")
	verify := flag.Bool("verify", false, "verify the result matrix")
	stats := flag.Bool("stats", false, "print memory-system counters per variant")
	format := flag.String("format", "table", "output format: table, csv or json")
	flag.Parse()

	spec, err := machine.ByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, "transpose:", err)
		os.Exit(1)
	}
	var variants []transpose.Variant
	if *variant == "all" {
		variants = transpose.Variants()
	} else {
		v, err := transpose.VariantByName(*variant)
		if err != nil {
			fmt.Fprintln(os.Stderr, "transpose:", err)
			os.Exit(1)
		}
		variants = []transpose.Variant{v}
	}
	// Each variant goes through the data path — a WorkloadSpec materialized
	// by the kernel's factory — exactly as a simd request would.
	var workloads []run.Workload
	for _, v := range variants {
		w, err := run.NewWorkload(run.WorkloadSpec{Kernel: "transpose", Params: map[string]string{
			"variant": v.String(),
			"n":       strconv.Itoa(*n),
			"block":   strconv.Itoa(*block),
			"verify":  strconv.FormatBool(*verify),
		}})
		if err != nil {
			fmt.Fprintln(os.Stderr, "transpose:", err)
			os.Exit(1)
		}
		workloads = append(workloads, w)
	}

	results, err := run.New(run.Options{}).Run(context.Background(),
		run.Cross([]machine.Spec{spec}, workloads))
	if err != nil {
		fmt.Fprintln(os.Stderr, "transpose:", err)
		os.Exit(1)
	}

	headers := []string{"Variant", "Seconds", "Speedup"}
	if *stats {
		headers = append(headers, "L1 miss", "TLB walks", "DRAM MiB", "PF fills")
	}
	tb := report.Table{
		Title:   fmt.Sprintf("In-place transposition, %d×%d doubles on %s", *n, *n, spec),
		Headers: headers,
	}
	var naive run.Result
	for i, res := range results {
		if variants[i] == transpose.Naive {
			naive = res
		}
		sp := "-"
		if naive.Seconds > 0 {
			sp = strconv.FormatFloat(res.SpeedupOver(naive), 'f', 2, 64) + "×"
		}
		row := []string{variants[i].String(), fmt.Sprintf("%.6f", res.Seconds), sp}
		if *stats {
			row = append(row,
				fmt.Sprintf("%.1f%%", 100*res.Mem.L1MissRate()),
				strconv.FormatUint(res.Mem.TLBWalks, 10),
				fmt.Sprintf("%.1f", float64(res.Mem.DRAMBytes)/(1<<20)),
				strconv.FormatUint(res.Mem.PrefetchFills, 10))
		}
		tb.Add(row...)
	}
	if err := report.Emit(os.Stdout, *format, tb); err != nil {
		fmt.Fprintln(os.Stderr, "transpose:", err)
		os.Exit(1)
	}
}
