// Command transpose runs the in-place matrix transposition study (§4.2) on a
// simulated device: one variant, or the full five-variant ladder, batched on
// a pooled runner.
//
// Usage:
//
//	transpose [-device NAME] [-n N] [-variant NAME|all] [-block B] [-verify]
//	          [-stats] [-format table|csv|json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/report"
	"riscvmem/internal/run"
)

func main() {
	device := flag.String("device", "VisionFive", "device name")
	n := flag.Int("n", 1024, "matrix dimension")
	variant := flag.String("variant", "all", "Naive, Parallel, Blocking, Manual_blocking, Dynamic or all")
	block := flag.Int("block", 0, "tile edge; 0 = auto (fits L1)")
	verify := flag.Bool("verify", false, "verify the result matrix")
	stats := flag.Bool("stats", false, "print memory-system counters per variant")
	format := flag.String("format", "table", "output format: table, csv or json")
	flag.Parse()

	spec, err := machine.ByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, "transpose:", err)
		os.Exit(1)
	}
	var workloads []run.Workload
	var variants []transpose.Variant
	for _, v := range transpose.Variants() {
		if *variant == "all" || strings.EqualFold(*variant, v.String()) {
			variants = append(variants, v)
			workloads = append(workloads, run.Transpose(transpose.Config{
				N: *n, Variant: v, Block: *block, Verify: *verify,
			}))
		}
	}
	if len(workloads) == 0 {
		fmt.Fprintf(os.Stderr, "transpose: unknown variant %q\n", *variant)
		os.Exit(1)
	}

	results, err := run.New(run.Options{}).Run(context.Background(),
		run.Cross([]machine.Spec{spec}, workloads))
	if err != nil {
		fmt.Fprintln(os.Stderr, "transpose:", err)
		os.Exit(1)
	}

	headers := []string{"Variant", "Seconds", "Speedup"}
	if *stats {
		headers = append(headers, "L1 miss", "TLB walks", "DRAM MiB", "PF fills")
	}
	tb := report.Table{
		Title:   fmt.Sprintf("In-place transposition, %d×%d doubles on %s", *n, *n, spec),
		Headers: headers,
	}
	var naive run.Result
	for i, res := range results {
		if variants[i] == transpose.Naive {
			naive = res
		}
		sp := "-"
		if naive.Seconds > 0 {
			sp = strconv.FormatFloat(res.SpeedupOver(naive), 'f', 2, 64) + "×"
		}
		row := []string{variants[i].String(), fmt.Sprintf("%.6f", res.Seconds), sp}
		if *stats {
			row = append(row,
				fmt.Sprintf("%.1f%%", 100*res.Mem.L1MissRate()),
				strconv.FormatUint(res.Mem.TLBWalks, 10),
				fmt.Sprintf("%.1f", float64(res.Mem.DRAMBytes)/(1<<20)),
				strconv.FormatUint(res.Mem.PrefetchFills, 10))
		}
		tb.Add(row...)
	}
	if err := report.Emit(os.Stdout, *format, tb); err != nil {
		fmt.Fprintln(os.Stderr, "transpose:", err)
		os.Exit(1)
	}
}
