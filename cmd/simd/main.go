// Command simd is the riscvmem daemon: a long-running HTTP server that
// executes simulation workloads described as data. It fronts one shared
// service.Service — a memoized, pooled runner — so identical cells across
// requests simulate exactly once, with per-request timeouts and a bounded
// in-flight admission limit.
//
// Usage:
//
//	simd [-addr :8471] [-maxinflight 4] [-maxjobs 4096] [-parallelism 0]
//	     [-timeout 60s] [-maxtimeout 5m]
//
// Endpoints:
//
//	GET  /healthz       liveness probe
//	GET  /v1/devices    device presets
//	GET  /v1/workloads  kernels, parameter grammar, sweep axes
//	POST /v1/batch      {"devices":[...], "workloads":[...]} cross-product
//	POST /v1/sweep      {"device":..., "axes":[...], "workloads":[...]}
//
// Workloads may be given as grammar strings ("stream:test=TRIAD,elems=65536",
// "transpose/Blocking") or as {"kernel":..., "params":{...}} objects:
//
//	curl -s localhost:8471/v1/batch -d '{
//	  "devices": ["MangoPi", "VisionFive"],
//	  "workloads": ["transpose:variant=Naive,n=512", "stream/TRIAD"]
//	}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"riscvmem/internal/service"
)

func main() {
	addr := flag.String("addr", ":8471", "listen address")
	maxInFlight := flag.Int("maxinflight", 4, "concurrently executing requests admitted; more fail with 429")
	maxJobs := flag.Int("maxjobs", 4096, "maximum device×workload jobs per request")
	parallelism := flag.Int("parallelism", 0, "runner worker goroutines; 0 = host CPU count")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request execution timeout; 0 = none")
	maxTimeout := flag.Duration("maxtimeout", 5*time.Minute, "cap on request-supplied timeouts; 0 = none")
	flag.Parse()

	svc := service.New(service.Options{
		Parallelism:    *parallelism,
		MaxInFlight:    *maxInFlight,
		MaxJobs:        *maxJobs,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("simd listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	select {
	case <-ctx.Done():
		log.Print("simd shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "simd: shutdown:", err)
			os.Exit(1)
		}
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}
