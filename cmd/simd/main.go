// Command simd is the riscvmem daemon: a long-running HTTP server that
// executes simulation workloads described as data. It fronts one shared
// service.Service — a memoized, pooled runner — so identical cells across
// requests simulate exactly once, with per-request timeouts, queued
// admission with backpressure, optional per-client rate limits, an async
// job API and graceful drain.
//
// Usage:
//
//	simd [-mode standalone|coordinator|worker]
//	     [-addr :8471] [-maxinflight 4] [-maxqueue 0] [-maxjobs 4096]
//	     [-parallelism 0] [-timeout 60s] [-maxtimeout 5m] [-drain 30s]
//	     [-jobttl 5m] [-clientrate 0] [-clientburst 0]
//	     [-cache-dir DIR] [-cache-mem 65536]
//	     [-coordinator URL] [-worker-id ID] [-heartbeat 1s] [-lease 0]
//	     [-max-cell-attempts 3]
//
// The default mode, standalone, is the single-process daemon described
// below. The other two modes form a distributed control plane
// (internal/cluster) with the same client-facing wire protocol:
//
//   - coordinator: no simulation happens here. The process serves
//     /v1/batch and /v1/sweep by sharding cells across registered workers
//     with a consistent-hash ring keyed by the memo store's own
//     coordinates (device identity + workload cache key), reassembling
//     rows in job order. Workers register and poll over /cluster/v1/*;
//     a worker silent past its -lease is marked lost and its unfinished
//     cells are requeued onto the survivors. Each cell carries a failure
//     budget (-max-cell-attempts, default 3): a cell that keeps taking its
//     worker down with it is quarantined — completed as an explicit error
//     row while sibling cells finish normally — and a request whose
//     deadline expires returns the rows it has with per-cell deadline
//     errors instead of hanging. Responses are otherwise bit-identical
//     to a standalone daemon serving the same request.
//   - worker: wraps the ordinary Service (all flags above apply,
//     -cache-dir included) and executes cells assigned by the
//     -coordinator URL. -worker-id defaults to hostname+addr; keep it
//     stable across restarts to keep the worker's ring shard — and its
//     warm disk cache — intact. SIGTERM announces drain: unfinished cells
//     requeue immediately to surviving workers.
//
// Cluster quickstart (one coordinator, two workers):
//
//	simd -mode coordinator -addr :8470 &
//	simd -mode worker -addr :8471 -coordinator http://127.0.0.1:8470 &
//	simd -mode worker -addr :8472 -coordinator http://127.0.0.1:8470 &
//	curl -s localhost:8470/v1/batch -d '{"workloads":["stream/TRIAD"]}'
//
// With -cache-dir the memo cache gains a persistent disk tier: every
// computed result is content-addressed on disk under DIR, and a restarted
// daemon serves previously computed cells without re-simulating. The
// companion `memo` tool exports, imports, lists and garbage-collects the
// same directory. -cache-mem bounds the in-memory tier (entries, not
// bytes).
//
// Endpoints (standalone and worker; coordinator serves the subset noted
// above plus /cluster/v1/*):
//
//	GET    /healthz        liveness probe (503 {"status":"draining"} during shutdown)
//	GET    /metrics        Prometheus metrics (cache tiers, admission, jobs, latency)
//	GET    /v1/devices     device presets
//	GET    /v1/workloads   kernels, parameter grammar, sweep axes
//	POST   /v1/batch       {"devices":[...], "workloads":[...]} cross-product
//	POST   /v1/sweep       {"device":..., "axes":[...], "workloads":[...]}
//	POST   /v1/jobs        {"batch":{...}} or {"sweep":{...}} → 202, poll the ID
//	GET    /v1/jobs        stored jobs, newest first
//	GET    /v1/jobs/{id}   job status plus rows accumulated so far (?after=N
//	                       returns only rows past the previous next_after)
//	DELETE /v1/jobs/{id}   request cancellation
//
// Workloads may be given as grammar strings ("stream:test=TRIAD,elems=65536",
// "transpose/Blocking") or as {"kernel":..., "params":{...}} objects:
//
//	curl -s localhost:8471/v1/batch -d '{
//	  "devices": ["MangoPi", "VisionFive"],
//	  "workloads": ["transpose:variant=Naive,n=512", "stream/TRIAD"]
//	}'
//
// On SIGTERM or SIGINT the daemon drains: /healthz flips to 503 so load
// balancers stop routing, no new work is admitted, and queued plus running
// work — async jobs included — finishes inside the -drain budget. Work
// still unfinished at the budget is cancelled and logged. A second signal
// forces immediate exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"riscvmem/internal/cluster"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

// flags collects every command-line knob; which ones apply depends on -mode.
type flags struct {
	mode        string
	addr        string
	maxInFlight int
	maxQueue    int
	maxJobs     int
	parallelism int
	timeout     time.Duration
	maxTimeout  time.Duration
	drainBudget time.Duration
	jobTTL      time.Duration
	clientRate  float64
	clientBurst int
	cacheDir    string
	cacheMem    int
	coordinator     string
	workerID        string
	heartbeat       time.Duration
	lease           time.Duration
	maxCellAttempts int
}

func main() {
	var f flags
	flag.StringVar(&f.mode, "mode", "standalone", "standalone | coordinator | worker")
	flag.StringVar(&f.addr, "addr", ":8471", "listen address")
	flag.IntVar(&f.maxInFlight, "maxinflight", 4, "concurrently executing requests")
	flag.IntVar(&f.maxQueue, "maxqueue", 0, "requests waiting for a slot before 429; 0 = 2×maxinflight, -1 disables queueing")
	flag.IntVar(&f.maxJobs, "maxjobs", 4096, "maximum device×workload jobs per request")
	flag.IntVar(&f.parallelism, "parallelism", 0, "runner worker goroutines; 0 = host CPU count")
	flag.DurationVar(&f.timeout, "timeout", 60*time.Second, "default per-request execution timeout; 0 = none")
	flag.DurationVar(&f.maxTimeout, "maxtimeout", 5*time.Minute, "cap on request-supplied timeouts; 0 = none")
	flag.DurationVar(&f.drainBudget, "drain", 30*time.Second, "graceful-drain budget on SIGTERM before unfinished jobs are cancelled")
	flag.DurationVar(&f.jobTTL, "jobttl", 5*time.Minute, "how long finished async jobs stay retrievable")
	flag.Float64Var(&f.clientRate, "clientrate", 0, "per-client sustained requests/second (X-Client-ID); 0 disables rate limiting")
	flag.IntVar(&f.clientBurst, "clientburst", 0, "per-client burst size; 0 = max(1, clientrate)")
	flag.StringVar(&f.cacheDir, "cache-dir", "", "directory for the persistent result-cache tier; empty = memory-only")
	flag.IntVar(&f.cacheMem, "cache-mem", 0, "in-memory cache tier capacity in entries; 0 = default (65536)")
	flag.StringVar(&f.coordinator, "coordinator", "", "coordinator base URL (worker mode; required)")
	flag.StringVar(&f.workerID, "worker-id", "", "stable worker identity on the hash ring (worker mode); default hostname+addr")
	flag.DurationVar(&f.heartbeat, "heartbeat", time.Second, "heartbeat interval advertised to workers (coordinator mode)")
	flag.DurationVar(&f.lease, "lease", 0, "worker liveness lease (coordinator mode); 0 = 3×heartbeat")
	flag.IntVar(&f.maxCellAttempts, "max-cell-attempts", 0, "per-cell failure budget before quarantine (coordinator mode); 0 = default (3)")
	flag.Parse()

	switch f.mode {
	case "standalone":
		runStandalone(f)
	case "coordinator":
		runCoordinator(f)
	case "worker":
		runWorker(f)
	default:
		fmt.Fprintf(os.Stderr, "simd: unknown -mode %q (want standalone, coordinator or worker)\n", f.mode)
		os.Exit(2)
	}
}

// newService builds the shared execution facade from the flags (standalone
// and worker modes).
func newService(f flags) *service.Service {
	store, err := run.OpenStore(f.cacheDir, f.cacheMem, log.Printf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd: opening cache dir:", err)
		os.Exit(1)
	}
	if f.cacheDir != "" {
		log.Printf("simd: persistent result cache at %s (version %s)", f.cacheDir, run.CacheVersion)
	}
	return service.New(service.Options{
		Parallelism:    f.parallelism,
		MaxInFlight:    f.maxInFlight,
		MaxQueue:       f.maxQueue,
		MaxJobs:        f.maxJobs,
		DefaultTimeout: f.timeout,
		MaxTimeout:     f.maxTimeout,
		JobTTL:         f.jobTTL,
		ClientRate:     f.clientRate,
		ClientBurst:    f.clientBurst,
		Store:          store,
		Logf:           log.Printf,
	})
}

// newServer wraps a handler with the daemon's standard server timeouts.
func newServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// serve starts the server and returns its fatal-error channel.
func serve(srv *http.Server, what string) <-chan error {
	errCh := make(chan error, 1)
	go func() {
		log.Printf("simd %s listening on %s", what, srv.Addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	return errCh
}

// drainService runs the service's graceful drain under the budget,
// force-exiting on a second signal, and logs the outcome.
func drainService(svc *service.Service, sig chan os.Signal, budget time.Duration) {
	svc.StartDrain()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), budget)
	drained := make(chan service.DrainReport, 1)
	go func() { drained <- svc.Drain(drainCtx) }()
	var rep service.DrainReport
	select {
	case rep = <-drained:
	case s := <-sig:
		log.Printf("simd: %s received again, forcing exit", s)
		os.Exit(1)
	}
	cancelDrain()
	if rep.Clean {
		log.Printf("simd: drained clean in %s", rep.Waited.Round(time.Millisecond))
	} else {
		log.Printf("simd: drain budget expired after %s: %d job(s) abandoned, %d request(s) still executing",
			rep.Waited.Round(time.Millisecond), len(rep.Abandoned), rep.InFlight)
	}
}

// shutdown closes the HTTP server's remaining (idle) connections.
func shutdown(srv *http.Server) {
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "simd: shutdown:", err)
		os.Exit(1)
	}
	log.Print("simd: exit")
}

// runStandalone is the classic single-process daemon.
func runStandalone(f flags) {
	svc := newService(f)
	srv := newServer(f.addr, service.NewHandler(svc))

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := serve(srv, "")

	select {
	case s := <-sig:
		log.Printf("simd: %s received, draining (budget %s; signal again to force exit)", s, f.drainBudget)
		// Flip /healthz to 503 and stop admitting before anything else, so
		// load balancers route away while admitted work finishes.
		drainService(svc, sig, f.drainBudget)
		// The service is drained; Shutdown only has idle connections left.
		shutdown(srv)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

// runCoordinator serves the cluster control plane; no simulation happens
// in this process.
func runCoordinator(f flags) {
	coord := cluster.New(cluster.Options{
		HeartbeatInterval: f.heartbeat,
		Lease:             f.lease,
		MaxJobs:           f.maxJobs,
		MaxCellAttempts:   f.maxCellAttempts,
		DefaultTimeout:    f.timeout,
		MaxTimeout:        f.maxTimeout,
		Logf:              log.Printf,
	})
	srv := newServer(f.addr, cluster.NewCoordinatorHandler(coord, log.Printf))

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := serve(srv, "coordinator")

	select {
	case s := <-sig:
		log.Printf("simd: %s received, closing coordinator", s)
		// Close first: pending dispatches and long polls unblock, so the
		// connections Shutdown waits on finish promptly.
		coord.Close()
		shutdown(srv)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

// runWorker wraps the ordinary Service with a cluster worker agent. The
// worker's own HTTP endpoints stay up for /healthz, /metrics and direct
// requests.
func runWorker(f flags) {
	if f.coordinator == "" {
		fmt.Fprintln(os.Stderr, "simd: -mode worker requires -coordinator URL")
		os.Exit(2)
	}
	id := f.workerID
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = host + f.addr
	}
	svc := newService(f)
	worker, err := cluster.NewWorker(cluster.WorkerOptions{
		ID:            id,
		Addr:          f.addr,
		Service:       svc,
		API:           cluster.NewClient(f.coordinator),
		MaxConcurrent: f.maxInFlight,
		Logf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
	// The worker's /metrics page carries the service metrics plus the
	// agent's control-plane counters (registrations, abandoned returns,
	// contained cell failures), appended in the same text format.
	base := service.NewHandler(svc)
	handler := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		base.ServeHTTP(rw, r)
		if r.Method == http.MethodGet && r.URL.Path == "/metrics" {
			if err := worker.WriteMetrics(rw); err != nil {
				log.Printf("simd: writing worker metrics: %v", err)
			}
		}
	})
	srv := newServer(f.addr, handler)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := serve(srv, "worker "+id)

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run(ctx) }()

	select {
	case s := <-sig:
		log.Printf("simd: %s received, draining worker (signal again to force exit)", s)
		// Cancel the agent first: it announces drain so the coordinator
		// requeues unfinished cells onto surviving workers immediately.
		cancel()
		select {
		case <-workerDone:
		case s := <-sig:
			log.Printf("simd: %s received again, forcing exit", s)
			os.Exit(1)
		}
		drainService(svc, sig, f.drainBudget)
		shutdown(srv)
	case err := <-workerDone:
		cancel()
		fmt.Fprintln(os.Stderr, "simd: worker:", err)
		os.Exit(1)
	case err := <-errCh:
		cancel()
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}
