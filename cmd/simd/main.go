// Command simd is the riscvmem daemon: a long-running HTTP server that
// executes simulation workloads described as data. It fronts one shared
// service.Service — a memoized, pooled runner — so identical cells across
// requests simulate exactly once, with per-request timeouts, queued
// admission with backpressure, optional per-client rate limits, an async
// job API and graceful drain.
//
// Usage:
//
//	simd [-addr :8471] [-maxinflight 4] [-maxqueue 0] [-maxjobs 4096]
//	     [-parallelism 0] [-timeout 60s] [-maxtimeout 5m] [-drain 30s]
//	     [-jobttl 5m] [-clientrate 0] [-clientburst 0]
//	     [-cache-dir DIR] [-cache-mem 65536]
//
// With -cache-dir the memo cache gains a persistent disk tier: every
// computed result is content-addressed on disk under DIR, and a restarted
// daemon serves previously computed cells without re-simulating. The
// companion `memo` tool exports, imports, lists and garbage-collects the
// same directory. -cache-mem bounds the in-memory tier (entries, not
// bytes).
//
// Endpoints:
//
//	GET    /healthz        liveness probe (503 {"status":"draining"} during shutdown)
//	GET    /metrics        Prometheus metrics (cache tiers, admission, jobs, latency)
//	GET    /v1/devices     device presets
//	GET    /v1/workloads   kernels, parameter grammar, sweep axes
//	POST   /v1/batch       {"devices":[...], "workloads":[...]} cross-product
//	POST   /v1/sweep       {"device":..., "axes":[...], "workloads":[...]}
//	POST   /v1/jobs        {"batch":{...}} or {"sweep":{...}} → 202, poll the ID
//	GET    /v1/jobs        stored jobs, newest first
//	GET    /v1/jobs/{id}   job status plus rows accumulated so far
//	DELETE /v1/jobs/{id}   request cancellation
//
// Workloads may be given as grammar strings ("stream:test=TRIAD,elems=65536",
// "transpose/Blocking") or as {"kernel":..., "params":{...}} objects:
//
//	curl -s localhost:8471/v1/batch -d '{
//	  "devices": ["MangoPi", "VisionFive"],
//	  "workloads": ["transpose:variant=Naive,n=512", "stream/TRIAD"]
//	}'
//
// On SIGTERM or SIGINT the daemon drains: /healthz flips to 503 so load
// balancers stop routing, no new work is admitted, and queued plus running
// work — async jobs included — finishes inside the -drain budget. Work
// still unfinished at the budget is cancelled and logged. A second signal
// forces immediate exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

func main() {
	addr := flag.String("addr", ":8471", "listen address")
	maxInFlight := flag.Int("maxinflight", 4, "concurrently executing requests")
	maxQueue := flag.Int("maxqueue", 0, "requests waiting for a slot before 429; 0 = 2×maxinflight, -1 disables queueing")
	maxJobs := flag.Int("maxjobs", 4096, "maximum device×workload jobs per request")
	parallelism := flag.Int("parallelism", 0, "runner worker goroutines; 0 = host CPU count")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request execution timeout; 0 = none")
	maxTimeout := flag.Duration("maxtimeout", 5*time.Minute, "cap on request-supplied timeouts; 0 = none")
	drainBudget := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM before unfinished jobs are cancelled")
	jobTTL := flag.Duration("jobttl", 5*time.Minute, "how long finished async jobs stay retrievable")
	clientRate := flag.Float64("clientrate", 0, "per-client sustained requests/second (X-Client-ID); 0 disables rate limiting")
	clientBurst := flag.Int("clientburst", 0, "per-client burst size; 0 = max(1, clientrate)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result-cache tier; empty = memory-only")
	cacheMem := flag.Int("cache-mem", 0, "in-memory cache tier capacity in entries; 0 = default (65536)")
	flag.Parse()

	store, err := run.OpenStore(*cacheDir, *cacheMem, log.Printf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd: opening cache dir:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		log.Printf("simd: persistent result cache at %s (version %s)", *cacheDir, run.CacheVersion)
	}

	svc := service.New(service.Options{
		Parallelism:    *parallelism,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		MaxJobs:        *maxJobs,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		JobTTL:         *jobTTL,
		ClientRate:     *clientRate,
		ClientBurst:    *clientBurst,
		Store:          store,
		Logf:           log.Printf,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	errCh := make(chan error, 1)
	go func() {
		log.Printf("simd listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case s := <-sig:
		log.Printf("simd: %s received, draining (budget %s; signal again to force exit)", s, *drainBudget)
		// Flip /healthz to 503 and stop admitting before anything else, so
		// load balancers route away while admitted work finishes.
		svc.StartDrain()
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainBudget)
		drained := make(chan service.DrainReport, 1)
		go func() { drained <- svc.Drain(drainCtx) }()
		var rep service.DrainReport
		select {
		case rep = <-drained:
		case s := <-sig:
			log.Printf("simd: %s received again, forcing exit", s)
			os.Exit(1)
		}
		cancelDrain()
		if rep.Clean {
			log.Printf("simd: drained clean in %s", rep.Waited.Round(time.Millisecond))
		} else {
			log.Printf("simd: drain budget expired after %s: %d job(s) abandoned, %d request(s) still executing",
				rep.Waited.Round(time.Millisecond), len(rep.Abandoned), rep.InFlight)
		}
		// The service is drained; Shutdown only has idle connections left.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "simd: shutdown:", err)
			os.Exit(1)
		}
		log.Print("simd: exit")
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}
