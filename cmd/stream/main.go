// Command stream runs the STREAM benchmark (§4.1) on one or all simulated
// devices, per memory level, and prints achieved bandwidths. All
// measurements execute as one batch on a pooled runner.
//
// Usage:
//
//	stream [-device NAME] [-test COPY|SCALE|SUM|TRIAD|all] [-scale N]
//	       [-reps N] [-format table|csv|json]
//	       [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/machine"
	"riscvmem/internal/profiling"
	"riscvmem/internal/report"
	"riscvmem/internal/run"
)

func main() {
	device := flag.String("device", "", "device name; empty = all")
	testName := flag.String("test", "all", "STREAM test: COPY, SCALE, SUM, TRIAD or all")
	scale := flag.Int("scale", 8, "divide the DRAM working set by this factor")
	reps := flag.Int("reps", 2, "timed repetitions (best kept)")
	format := flag.String("format", "table", "output format: table, csv or json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stream:", err)
		os.Exit(1)
	}
	defer stopProf()
	// os.Exit skips defers: error exits flush the profiles explicitly so a
	// failed run never leaves a truncated CPU profile behind.
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "stream:", err)
		stopProf()
		os.Exit(1)
	}

	var devices []machine.Spec
	if *device == "" {
		devices = machine.All()
	} else {
		spec, err := machine.ByName(*device)
		if err != nil {
			fail(err)
		}
		devices = []machine.Spec{spec}
	}
	var tests []stream.Test
	if *testName == "all" {
		tests = stream.Tests()
	} else {
		t, err := stream.TestByName(*testName)
		if err != nil {
			fail(err)
		}
		tests = []stream.Test{t}
	}

	// One job per device × level × test, executed as a single batch. Each
	// job goes through the data path — a WorkloadSpec materialized by the
	// kernel's factory — exactly as a simd request would.
	var jobs []run.Job
	type label struct{ device, level, test string }
	var labels []label
	for _, spec := range devices {
		for _, lv := range stream.Levels(spec, *scale) {
			for _, t := range tests {
				w, err := run.NewWorkload(run.WorkloadSpec{Kernel: "stream", Params: map[string]string{
					"test":    t.String(),
					"elems":   strconv.Itoa(lv.Elems),
					"cores":   strconv.Itoa(lv.Cores),
					"reps":    strconv.Itoa(*reps),
					"scaleby": strconv.Itoa(lv.ScaleBy),
				}})
				if err != nil {
					fail(err)
				}
				jobs = append(jobs, run.Job{Device: spec, Workload: w})
				labels = append(labels, label{spec.Name, lv.Name, t.String()})
			}
		}
	}
	results, err := run.New(run.Options{}).Run(context.Background(), jobs)
	if err != nil {
		fail(err)
	}

	tb := report.Table{Title: "STREAM bandwidth (simulated)",
		Headers: []string{"Device", "Level", "Test", "Bandwidth"}}
	for i, r := range results {
		tb.Add(labels[i].device, labels[i].level, labels[i].test, r.Bandwidth.String())
	}
	if err := report.Emit(os.Stdout, *format, tb); err != nil {
		fail(err)
	}
}
