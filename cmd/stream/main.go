// Command stream runs the STREAM benchmark (§4.1) on one or all simulated
// devices, per memory level, and prints achieved bandwidths.
//
// Usage:
//
//	stream [-device NAME] [-test COPY|SCALE|SUM|TRIAD|all] [-scale N] [-reps N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/machine"
	"riscvmem/internal/report"
)

func main() {
	device := flag.String("device", "", "device name; empty = all")
	testName := flag.String("test", "all", "STREAM test: COPY, SCALE, SUM, TRIAD or all")
	scale := flag.Int("scale", 8, "divide the DRAM working set by this factor")
	reps := flag.Int("reps", 2, "timed repetitions (best kept)")
	flag.Parse()

	var devices []machine.Spec
	if *device == "" {
		devices = machine.All()
	} else {
		spec, err := machine.ByName(*device)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
			os.Exit(1)
		}
		devices = []machine.Spec{spec}
	}
	var tests []stream.Test
	for _, t := range stream.Tests() {
		if *testName == "all" || strings.EqualFold(*testName, t.String()) {
			tests = append(tests, t)
		}
	}
	if len(tests) == 0 {
		fmt.Fprintf(os.Stderr, "stream: unknown test %q\n", *testName)
		os.Exit(1)
	}

	tb := report.Table{Title: "STREAM bandwidth (simulated)", Headers: []string{"Device", "Level", "Test", "Bandwidth"}}
	for _, spec := range devices {
		for _, lv := range stream.Levels(spec, *scale) {
			for _, t := range tests {
				m, err := stream.Run(spec, stream.Config{
					Test: t, Elems: lv.Elems, Cores: lv.Cores, Reps: *reps, ScaleBy: lv.ScaleBy,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "stream:", err)
					os.Exit(1)
				}
				tb.Add(spec.Name, lv.Name, t.String(), m.Best.String())
			}
		}
	}
	tb.Render(os.Stdout)
}
