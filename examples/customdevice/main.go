// Customdevice: the library's devices are just parameter sets — this example
// upgrades the VisionFive into a hypothetical next-generation RISC-V board
// (bigger L2, four memory channels, out-of-order-ish cores) and shows how
// the paper's transposition study responds. This is the workflow for "what
// would this kernel need from future RISC-V silicon?" questions.
package main

import (
	"fmt"
	"log"

	"riscvmem"
	"riscvmem/internal/cache"
	"riscvmem/internal/hier"
	"riscvmem/internal/units"
)

// futureBoard derives an upgraded VisionFive: 1 MiB LRU L2, 4 DRAM channels
// at 4× the service rate, deeper miss overlap, and more MSHRs.
func futureBoard() riscvmem.Device {
	d := riscvmem.VisionFive()
	d.Name = "FutureRISCV"
	d.CPU = "hypothetical U74 successor"
	d.Cores = 4
	d.Mem.Cores = 4
	d.Mem.L2 = &hier.Level{
		Cache: cache.Config{Name: "L2", Size: 1 * units.MiB, Ways: 16,
			LineSize: 64, Policy: cache.LRU},
		HitCycles: 20, Shared: true,
	}
	d.Mem.DRAM.Channels = 4
	d.Mem.DRAM.BytesPerCycle = 2.0
	d.Mem.MissOverlap = 0.5 // a modest out-of-order window
	d.Mem.MaxInflight = 12
	return d
}

func main() {
	base := riscvmem.VisionFive()
	future := futureBoard()
	if err := future.Validate(); err != nil {
		log.Fatal(err)
	}

	const n = 1024
	fmt.Printf("In-place transposition of a %d×%d double matrix:\n\n", n, n)
	for _, dev := range []riscvmem.Device{base, future} {
		fmt.Println(dev)
		var naive float64
		for _, v := range riscvmem.TransposeVariants() {
			res, err := riscvmem.RunTranspose(dev, riscvmem.TransposeConfig{N: n, Variant: v})
			if err != nil {
				log.Fatal(err)
			}
			if v == riscvmem.TransposeNaive {
				naive = res.Seconds
			}
			fmt.Printf("  %-16s %.4fs  (%.2f× vs naive)\n", v, res.Seconds, naive/res.Seconds)
		}
		fmt.Println()
	}

	// A custom kernel against the raw machine API: pointer-chasing latency,
	// the microbenchmark the presets' DRAM latencies were sanity-checked
	// against.
	fmt.Println("Dependent-load latency (pointer chase over 8 MiB):")
	for _, dev := range []riscvmem.Device{base, future} {
		m, err := riscvmem.NewMachine(dev)
		if err != nil {
			log.Fatal(err)
		}
		const elems = 1 << 20
		arr, err := m.NewF64(elems)
		if err != nil {
			log.Fatal(err)
		}
		// A stride that defeats the prefetcher and the caches.
		const stride = 8209 // prime
		res := m.RunSeq(func(c *riscvmem.Core) {
			idx := 0
			for i := 0; i < 1<<15; i++ {
				arr.Load(c, idx)
				idx = (idx + stride) % elems
			}
		})
		fmt.Printf("  %-12s %.1f cycles/load\n", dev.Name, res.Cycles/(1<<15))
	}
}
