// Customdevice: the library's devices are just parameter sets and its
// workloads are just values — this example upgrades the VisionFive into a
// hypothetical next-generation RISC-V board (bigger L2, four memory
// channels, out-of-order-ish cores), registers a custom pointer-chasing
// kernel alongside the built-ins, and batches the whole device × workload
// cross-product through one Runner. This is the workflow for "what would
// this kernel need from future RISC-V silicon?" questions.
package main

import (
	"context"
	"fmt"
	"log"

	"riscvmem"
	"riscvmem/internal/cache"
	"riscvmem/internal/hier"
	"riscvmem/internal/units"
)

// futureBoard derives an upgraded VisionFive: 1 MiB LRU L2, 4 DRAM channels
// at 4× the service rate, deeper miss overlap, and more MSHRs.
func futureBoard() riscvmem.Device {
	d := riscvmem.VisionFive()
	d.Name = "FutureRISCV"
	d.CPU = "hypothetical U74 successor"
	d.Cores = 4
	d.Mem.Cores = 4
	d.Mem.L2 = &hier.Level{
		Cache: cache.Config{Name: "L2", Size: 1 * units.MiB, Ways: 16,
			LineSize: 64, Policy: cache.LRU},
		HitCycles: 20, Shared: true,
	}
	d.Mem.DRAM.Channels = 4
	d.Mem.DRAM.BytesPerCycle = 2.0
	d.Mem.MissOverlap = 0.5 // a modest out-of-order window
	d.Mem.MaxInflight = 12
	return d
}

// pointerChase is a custom kernel registered as a first-class workload:
// dependent-load latency over an 8 MiB array at a prime stride that defeats
// the prefetcher and the caches — the microbenchmark the presets' DRAM
// latencies were sanity-checked against. Result.Cycles is the total chase
// time; Seconds follows from the device clock.
func pointerChase(ctx context.Context, m *riscvmem.Machine) (riscvmem.Result, error) {
	const elems = 1 << 20
	const loads = 1 << 15
	arr, err := m.NewF64(elems)
	if err != nil {
		return riscvmem.Result{}, err
	}
	const stride = 8209 // prime
	res := m.RunSeq(func(c *riscvmem.Core) {
		idx := 0
		for i := 0; i < loads; i++ {
			arr.Load(c, idx)
			idx = (idx + stride) % elems
		}
	})
	return riscvmem.Result{
		Cycles:  res.Cycles,
		Seconds: res.Seconds(m.Spec()),
		Bytes:   8 * loads,
	}, nil
}

func main() {
	base := riscvmem.VisionFive()
	future := futureBoard()
	if err := future.Validate(); err != nil {
		log.Fatal(err)
	}
	devices := []riscvmem.Device{base, future}

	// Custom kernels register next to the built-ins and are addressable by
	// name from then on.
	if err := riscvmem.Register(riscvmem.WorkloadFunc("chase/8MiB", pointerChase)); err != nil {
		log.Fatal(err)
	}

	const n = 1024
	var workloads []riscvmem.Workload
	for _, v := range riscvmem.TransposeVariants() {
		workloads = append(workloads,
			riscvmem.TransposeWorkload(riscvmem.TransposeConfig{N: n, Variant: v}))
	}
	chase, err := riscvmem.WorkloadByName("chase/8MiB")
	if err != nil {
		log.Fatal(err)
	}
	workloads = append(workloads, chase)

	// One batch over the full cross-product: 2 devices × 6 workloads.
	runner := riscvmem.NewRunner(riscvmem.RunnerOptions{})
	results, err := runner.Run(context.Background(), riscvmem.Jobs(devices, workloads))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("In-place transposition of a %d×%d double matrix, plus a custom\n", n, n)
	fmt.Printf("pointer-chase workload, batched over %d jobs:\n\n", len(results))
	i := 0
	for _, dev := range devices {
		fmt.Println(dev)
		naive := results[i]
		for range riscvmem.TransposeVariants() {
			r := results[i]
			i++
			fmt.Printf("  %-26s %.4fs  (%.2f× vs naive)\n",
				r.Workload, r.Seconds, r.SpeedupOver(naive))
		}
		r := results[i]
		i++
		fmt.Printf("  %-26s %.1f cycles/load\n", r.Workload, r.Cycles/(1<<15))
		fmt.Println()
	}
}
