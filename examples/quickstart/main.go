// Quickstart: measure STREAM TRIAD bandwidth and run one optimized
// transposition on two simulated devices, using only the public riscvmem
// API. This is the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"riscvmem"
)

func main() {
	for _, dev := range []riscvmem.Device{riscvmem.VisionFive(), riscvmem.XeonServer()} {
		fmt.Println(dev)

		// STREAM TRIAD at the DRAM level: the levels helper sizes the
		// arrays past every cache, exactly like the paper's method.
		levels := riscvmem.StreamLevels(dev, 8)
		dram := levels[len(levels)-1]
		m, err := riscvmem.RunStream(dev, riscvmem.StreamConfig{
			Test:  riscvmem.StreamTriad,
			Elems: dram.Elems, Cores: dram.Cores, ScaleBy: dram.ScaleBy,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  STREAM TRIAD (DRAM): %s\n", m.Best)

		// Naive vs blocked transposition of a 1024×1024 double matrix.
		naive, err := riscvmem.RunTranspose(dev, riscvmem.TransposeConfig{
			N: 1024, Variant: riscvmem.TransposeNaive, Verify: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		blocked, err := riscvmem.RunTranspose(dev, riscvmem.TransposeConfig{
			N: 1024, Variant: riscvmem.TransposeManualBlocking, Verify: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  transpose 1024²: naive %.4fs, manual blocking %.4fs (%.1f× faster)\n\n",
			naive.Seconds, blocked.Seconds, naive.Seconds/blocked.Seconds)
	}
}
