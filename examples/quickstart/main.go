// Quickstart: measure STREAM TRIAD bandwidth and run one optimized
// transposition on two simulated devices through the Workload/Runner API.
// This is the five-minute tour of the library: workloads are values, a
// Runner executes device × workload batches on pooled machines, and every
// run reports the same unified Result type.
package main

import (
	"context"
	"fmt"
	"log"

	"riscvmem"
)

func main() {
	runner := riscvmem.NewRunner(riscvmem.RunnerOptions{})
	ctx := context.Background()

	for _, dev := range []riscvmem.Device{riscvmem.VisionFive(), riscvmem.XeonServer()} {
		fmt.Println(dev)

		// STREAM TRIAD at the DRAM level: the levels helper sizes the
		// arrays past every cache, exactly like the paper's method.
		levels := riscvmem.StreamLevels(dev, 8)
		dram := levels[len(levels)-1]
		triad, err := runner.RunOne(ctx, dev, riscvmem.StreamWorkload(riscvmem.StreamConfig{
			Test:  riscvmem.StreamTriad,
			Elems: dram.Elems, Cores: dram.Cores, ScaleBy: dram.ScaleBy,
		}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  STREAM TRIAD (DRAM): %s\n", triad.Bandwidth)

		// Naive vs blocked transposition of a 1024×1024 double matrix,
		// batched: both jobs reuse the pooled machine.
		results, err := runner.Run(ctx, riscvmem.Jobs(
			[]riscvmem.Device{dev},
			[]riscvmem.Workload{
				riscvmem.TransposeWorkload(riscvmem.TransposeConfig{
					N: 1024, Variant: riscvmem.TransposeNaive, Verify: true}),
				riscvmem.TransposeWorkload(riscvmem.TransposeConfig{
					N: 1024, Variant: riscvmem.TransposeManualBlocking, Verify: true}),
			}))
		if err != nil {
			log.Fatal(err)
		}
		naive, blocked := results[0], results[1]
		fmt.Printf("  transpose 1024²: naive %.4fs, manual blocking %.4fs (%.1f× faster)\n\n",
			naive.Seconds, blocked.Seconds, blocked.SpeedupOver(naive))
	}
}
