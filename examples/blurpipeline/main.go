// Blurpipeline: walk the paper's §4.3 optimization ladder for Gaussian blur
// on every simulated device — naive 2D convolution, unit-stride access,
// separable 1D kernels, memory-ordered passes, and row parallelism — and
// print the per-device speedup table the paper's Fig. 6 summarizes.
package main

import (
	"fmt"
	"log"

	"riscvmem"
)

func main() {
	// A quarter-scale version of the paper's 2544×2027×3 image, F = 19.
	// Functional simulation of ~80M kernel taps per naive run: expect the
	// full four-device ladder to take a couple of minutes.
	cfg := riscvmem.BlurConfig{W: 636, H: 507, C: riscvmem.PaperImageC, F: riscvmem.PaperFilter}

	fmt.Printf("Gaussian blur, %d×%d×%d image, filter %d×%d:\n\n", cfg.W, cfg.H, cfg.C, cfg.F, cfg.F)
	for _, dev := range riscvmem.Devices() {
		fmt.Println(dev)
		var naive float64
		for _, v := range riscvmem.BlurVariants() {
			c := cfg
			c.Variant = v
			res, err := riscvmem.RunBlur(dev, c)
			if err != nil {
				log.Fatal(err)
			}
			if v == riscvmem.BlurNaive {
				naive = res.Seconds
			}
			fmt.Printf("  %-12s %9.4fs  (%.2f× vs naive)\n", v, res.Seconds, naive/res.Seconds)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper Fig. 6): Unit-stride helps everywhere except")
	fmt.Println("the bandwidth-starved VisionFive; Memory is the big win and enjoys")
	fmt.Println("compiler vectorization on Xeon/Pi; Parallel is channel-limited.")
}
