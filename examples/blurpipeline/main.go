// Blurpipeline: walk the paper's §4.3 optimization ladder for Gaussian blur
// on every simulated device — naive 2D convolution, unit-stride access,
// separable 1D kernels, memory-ordered passes, and row parallelism — and
// print the per-device speedup table the paper's Fig. 6 summarizes.
//
// The full 4-device × 5-variant ladder runs as ONE batch on the Runner:
// host goroutines work the cross-product in parallel on pooled machines, a
// progress callback streams completions, and the results come back in job
// order (bit-identical to running each job alone).
package main

import (
	"context"
	"fmt"
	"log"

	"riscvmem"
)

func main() {
	// A quarter-scale version of the paper's 2544×2027×3 image, F = 19.
	// Functional simulation of ~80M kernel taps per naive run; batching
	// across host cores is what keeps the wall-clock tolerable.
	cfg := riscvmem.BlurConfig{W: 636, H: 507, C: riscvmem.PaperImageC, F: riscvmem.PaperFilter}

	var workloads []riscvmem.Workload
	for _, v := range riscvmem.BlurVariants() {
		c := cfg
		c.Variant = v
		workloads = append(workloads, riscvmem.BlurWorkload(c))
	}
	jobs := riscvmem.Jobs(riscvmem.Devices(), workloads)

	runner := riscvmem.NewRunner(riscvmem.RunnerOptions{
		OnProgress: func(p riscvmem.RunnerProgress) {
			fmt.Printf("\r%d/%d jobs done (%s on %s)        ",
				p.Done, p.Total, p.Job.Workload.Name(), p.Job.Device.Name)
		},
	})
	fmt.Printf("Gaussian blur, %d×%d×%d image, filter %d×%d, %d batched jobs:\n\n",
		cfg.W, cfg.H, cfg.C, cfg.F, cfg.F, len(jobs))
	results, err := runner.Run(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\r                                                              \r")

	i := 0
	for _, dev := range riscvmem.Devices() {
		fmt.Println(dev)
		naive := results[i]
		for range riscvmem.BlurVariants() {
			r := results[i]
			i++
			fmt.Printf("  %-18s %9.4fs  (%.2f× vs naive)\n", r.Workload, r.Seconds, r.SpeedupOver(naive))
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper Fig. 6): Unit-stride helps everywhere except")
	fmt.Println("the bandwidth-starved VisionFive; Memory is the big win and enjoys")
	fmt.Println("compiler vectorization on Xeon/Pi; Parallel is channel-limited.")
}
