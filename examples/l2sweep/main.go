// l2sweep answers the paper's most tempting counterfactual: what if the
// Mango Pi's Allwinner D1 — whose defining microarchitectural gap is having
// no L2 cache at all — had one?
//
// A declarative sweep crosses hypothetical L2 capacities with the MSHR
// count (the other bandwidth limiter the paper discusses) and runs the
// naive transposition plus STREAM TRIAD in every cell on the memoized
// runner, reporting each cell's speedup over the real, L2-less D1. Re-run
// the binary twice within one process and the second sweep would simulate
// nothing: identical cells are served from the result cache.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"riscvmem"
)

func main() {
	base := riscvmem.MangoPiD1()
	fmt.Printf("Base device: %s (no L2 — the paper's Fig. 1 discussion)\n\n", base)

	res, err := riscvmem.RunSweep(context.Background(), riscvmem.SweepConfig{
		Base: base,
		Axes: []riscvmem.SweepAxis{
			riscvmem.MustParseSweepAxis("l2=base,128KiB,1MiB"),
			riscvmem.MustParseSweepAxis("maxinflight=base,16"),
		},
		Workloads: []riscvmem.Workload{
			riscvmem.TransposeWorkload(riscvmem.TransposeConfig{
				N: 512, Variant: riscvmem.TransposeNaive}),
			riscvmem.StreamWorkload(riscvmem.StreamConfig{
				Test: riscvmem.StreamTriad, Elems: 1 << 16, Reps: 2}),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	tbl := res.Table()
	tbl.Render(os.Stdout)

	best := res.PerCell[0]
	for _, cr := range res.PerCell {
		if cr.Result.Workload == "transpose/Naive" && cr.Speedup > best.Speedup {
			best = cr
		}
	}
	fmt.Printf("\nBest transpose cell: %v — %.2f× the real D1.\n",
		best.Cell.Labels, best.Speedup)
}
