// Example client drives the simd service over HTTP: it discovers devices
// and workloads, posts a batch request (twice, to show the shared memo
// cache absorbing the repeat), posts a sweep, submits an async job and
// polls it to completion, and hammers a deliberately tiny server to show
// the retry discipline a production consumer needs — honoring Retry-After
// on 429 with capped, jittered exponential backoff for everything else.
//
// By default it starts an in-process server on a loopback port, so
//
//	go run ./examples/client
//
// is self-contained; point it at a running daemon with
//
//	go run ./cmd/simd &
//	go run ./examples/client -addr localhost:8471
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"riscvmem"
)

func main() {
	addr := flag.String("addr", "", "simd address (host:port); empty starts an in-process server")
	flag.Parse()

	base := *addr
	selfContained := base == ""
	if selfContained {
		// Self-contained mode: serve the same handler cmd/simd uses on a
		// loopback listener.
		base = startServer(riscvmem.ServiceOptions{DefaultTimeout: time.Minute})
		fmt.Printf("started in-process simd on %s\n\n", base)
	}
	url := "http://" + base

	// Discover what the daemon can run.
	var devices []riscvmem.ServiceDeviceInfo
	getJSON(url+"/v1/devices", &devices)
	fmt.Println("devices:")
	for _, d := range devices {
		fmt.Printf("  %-14s %s\n", d.Name, d.CPU)
	}
	var winfo riscvmem.ServiceWorkloadsInfo
	getJSON(url+"/v1/workloads", &winfo)
	fmt.Println("kernels:")
	for _, k := range winfo.Kernels {
		fmt.Printf("  %-10s %s\n", k.Kernel, k.Params)
	}

	// A batch: the paper's shape — workloads × devices — as one request.
	// Workload specs are data; the grammar string and the struct form are
	// interchangeable on the wire.
	batch := riscvmem.BatchRequest{
		Devices: []string{"MangoPi", "VisionFive"},
		Workloads: []riscvmem.WorkloadSpec{
			riscvmem.MustParseWorkloadSpec("stream:test=TRIAD,elems=65536"),
			riscvmem.MustParseWorkloadSpec("transpose:variant=Blocking,n=512"),
		},
	}
	var resp riscvmem.ServiceResponse
	postJSON(url+"/v1/batch", batch, &resp)
	fmt.Println("\nbatch results:")
	for _, row := range resp.Results {
		fmt.Printf("  %-20s %-12s %10.6fs  %s\n",
			row.Workload, row.Device, row.Seconds, row.Bandwidth)
	}
	fmt.Printf("  (%d new simulations)\n", resp.Cache.RequestMisses)

	// The same request again: every cell is served from the daemon's memo
	// cache — zero new simulations. The per-tier breakdown says where the
	// hits came from: memory for a warm daemon, disk when a daemon started
	// with -cache-dir was restarted since the cells were computed.
	postJSON(url+"/v1/batch", batch, &resp)
	fmt.Printf("repeat of the same batch: %d new simulations, %d cache hits (%d memory-tier, %d disk-tier)\n",
		resp.Cache.RequestMisses, resp.Cache.RequestHits,
		resp.Cache.RequestTiers.MemoryHits, resp.Cache.RequestTiers.DiskHits)

	// A sweep: "what if the Mango Pi had an L2?" as one request.
	sweepReq := riscvmem.SweepRequest{
		Device: "MangoPi",
		Axes:   []string{"l2=base,128KiB,1MiB"},
		Workloads: []riscvmem.WorkloadSpec{
			riscvmem.MustParseWorkloadSpec("transpose:variant=Naive,n=512"),
		},
	}
	postJSON(url+"/v1/sweep", sweepReq, &resp)
	fmt.Println("\nsweep results (transpose/Naive on MangoPi):")
	for _, row := range resp.Results {
		fmt.Printf("  %-16v %10.6fs  speedup %.3f×\n", row.Cell, row.Seconds, row.Speedup)
	}

	// The async job API: submit, get a 202 with an ID, poll until done.
	// Long-running work survives the submitting connection, and rows stream
	// into the status in completion order while it runs.
	jobReq := riscvmem.ServiceJobRequest{Batch: &riscvmem.BatchRequest{
		Devices: []string{"RaspberryPi4"},
		Workloads: []riscvmem.WorkloadSpec{
			riscvmem.MustParseWorkloadSpec("stream:test=COPY,elems=65536"),
			riscvmem.MustParseWorkloadSpec("gblur:variant=Memory,w=256,h=256"),
		},
	}}
	var job riscvmem.ServiceJobStatus
	postJSON(url+"/v1/jobs", jobReq, &job)
	fmt.Printf("\nsubmitted job %s (%d jobs)\n", job.ID, job.Total)
	for !terminal(job.State) {
		time.Sleep(50 * time.Millisecond)
		getJSON(url+"/v1/jobs/"+job.ID, &job)
		fmt.Printf("  poll: %-8s %d/%d rows\n", job.State, len(job.Rows), job.Total)
	}
	if job.State != riscvmem.JobDone {
		log.Fatalf("job %s ended %s: %s", job.ID, job.State, job.Error)
	}

	// Backpressure and the retry discipline. Against a server with one
	// execution slot and a two-deep queue, concurrent requests overflow into
	// 429s carrying Retry-After — the client's job is to honor the hint
	// instead of hammering. (Demonstrated on a dedicated tiny server so the
	// numbers are deterministic-ish; -addr mode skips it.)
	if selfContained {
		tiny := "http://" + startServer(riscvmem.ServiceOptions{
			MaxInFlight: 1, MaxQueue: 2, DefaultTimeout: time.Minute,
		})
		fmt.Printf("\nhammering a tiny server (MaxInFlight 1, MaxQueue 2) with 6 concurrent sweeps:\n")
		var wg sync.WaitGroup
		var retriesTotal, attempt429 int64
		var mu sync.Mutex
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Distinct requests so the memo cache cannot absorb them.
				req := riscvmem.SweepRequest{
					Device:    "MangoPi",
					Axes:      []string{fmt.Sprintf("dramlat=%d,%d", 100+i, 200+i)},
					Workloads: []riscvmem.WorkloadSpec{riscvmem.MustParseWorkloadSpec("stream:test=SCALE,elems=65536")},
				}
				var out riscvmem.ServiceResponse
				retries, rejected := postJSONRetry(tiny+"/v1/sweep", req, &out)
				mu.Lock()
				retriesTotal += int64(retries)
				attempt429 += int64(rejected)
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		fmt.Printf("  all 6 completed: %d rejections (429), %d retries, zero failures\n",
			attempt429, retriesTotal)
	}
}

// terminal reports whether a job state is final.
func terminal(st riscvmem.ServiceJobState) bool {
	return st == riscvmem.JobDone || st == riscvmem.JobFailed || st == riscvmem.JobCancelled
}

// startServer serves the simd handler on a fresh loopback listener and
// returns its address.
func startServer(opt riscvmem.ServiceOptions) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	svc := riscvmem.NewService(opt)
	go http.Serve(ln, riscvmem.NewServiceHandler(svc)) //nolint:errcheck // dies with the example
	return ln.Addr().String()
}

func getJSON(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}

func postJSON(url string, req, dst any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
}

// Retry policy: how a production client should treat the daemon's
// backpressure.
const (
	retryMax     = 10                     // attempts before giving up
	backoffBase  = 100 * time.Millisecond // first exponential step
	backoffCap   = 2 * time.Second        // exponential ceiling
	retryAferCap = 5 * time.Second        // never honor a hint longer than this
)

// postJSONRetry posts with retries. A 429 honors the server's Retry-After
// hint (capped); 5xx and transport errors use capped exponential backoff
// with full jitter — random in [0, min(cap, base·2ⁿ)] — so a thundering
// herd of clients spreads out instead of re-colliding. 4xx other than 429
// never retries: the request itself is wrong. Returns the retry and
// 429-rejection counts.
func postJSONRetry(url string, req, dst any) (retries, rejected int) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	for attempt := 0; ; attempt++ {
		wait, ok := tryPost(url, body, dst)
		if ok {
			return attempt, rejected
		}
		if attempt+1 >= retryMax {
			log.Fatalf("POST %s: gave up after %d attempts", url, retryMax)
		}
		if wait > 0 {
			rejected++ // a 429 with the server's own hint
			if wait > retryAferCap {
				wait = retryAferCap
			}
		} else {
			step := backoffBase << attempt
			if step > backoffCap || step <= 0 {
				step = backoffCap
			}
			wait = time.Duration(rand.Int63n(int64(step) + 1))
		}
		time.Sleep(wait)
	}
}

// tryPost performs one attempt. ok means dst is filled; otherwise wait is
// the server's Retry-After (0 when the attempt should use its own backoff).
func tryPost(url string, body []byte, dst any) (wait time.Duration, ok bool) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false // transport error: backoff and retry
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			log.Fatalf("POST %s: %v", url, err)
		}
		return 0, true
	case resp.StatusCode == http.StatusTooManyRequests:
		wait = time.Second
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			wait = time.Duration(s) * time.Second
		}
		return wait, false
	case resp.StatusCode >= 500:
		return 0, false // server-side: backoff and retry
	default:
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, msg)
		return 0, false
	}
}
