// Example client drives the simd service over HTTP: it discovers devices
// and workloads, posts a batch request (twice, to show the shared memo
// cache absorbing the repeat), and posts a sweep — everything a remote
// consumer of the daemon does, expressed with the library's request types.
//
// By default it starts an in-process server on a loopback port, so
//
//	go run ./examples/client
//
// is self-contained; point it at a running daemon with
//
//	go run ./cmd/simd &
//	go run ./examples/client -addr localhost:8471
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"riscvmem"
)

func main() {
	addr := flag.String("addr", "", "simd address (host:port); empty starts an in-process server")
	flag.Parse()

	base := *addr
	if base == "" {
		// Self-contained mode: serve the same handler cmd/simd uses on a
		// loopback listener.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		svc := riscvmem.NewService(riscvmem.ServiceOptions{DefaultTimeout: time.Minute})
		go http.Serve(ln, riscvmem.NewServiceHandler(svc)) //nolint:errcheck // dies with the example
		base = ln.Addr().String()
		fmt.Printf("started in-process simd on %s\n\n", base)
	}
	url := "http://" + base

	// Discover what the daemon can run.
	var devices []riscvmem.ServiceDeviceInfo
	getJSON(url+"/v1/devices", &devices)
	fmt.Println("devices:")
	for _, d := range devices {
		fmt.Printf("  %-14s %s\n", d.Name, d.CPU)
	}
	var winfo riscvmem.ServiceWorkloadsInfo
	getJSON(url+"/v1/workloads", &winfo)
	fmt.Println("kernels:")
	for _, k := range winfo.Kernels {
		fmt.Printf("  %-10s %s\n", k.Kernel, k.Params)
	}

	// A batch: the paper's shape — workloads × devices — as one request.
	// Workload specs are data; the grammar string and the struct form are
	// interchangeable on the wire.
	batch := riscvmem.BatchRequest{
		Devices: []string{"MangoPi", "VisionFive"},
		Workloads: []riscvmem.WorkloadSpec{
			riscvmem.MustParseWorkloadSpec("stream:test=TRIAD,elems=65536"),
			riscvmem.MustParseWorkloadSpec("transpose:variant=Blocking,n=512"),
		},
	}
	var resp riscvmem.ServiceResponse
	postJSON(url+"/v1/batch", batch, &resp)
	fmt.Println("\nbatch results:")
	for _, row := range resp.Results {
		fmt.Printf("  %-20s %-12s %10.6fs  %s\n",
			row.Workload, row.Device, row.Seconds, row.Bandwidth)
	}
	fmt.Printf("  (%d new simulations)\n", resp.Cache.RequestMisses)

	// The same request again: every cell is served from the daemon's memo
	// cache — zero new simulations.
	postJSON(url+"/v1/batch", batch, &resp)
	fmt.Printf("repeat of the same batch: %d new simulations, %d cache hits\n",
		resp.Cache.RequestMisses, resp.Cache.RequestHits)

	// A sweep: "what if the Mango Pi had an L2?" as one request.
	sweepReq := riscvmem.SweepRequest{
		Device: "MangoPi",
		Axes:   []string{"l2=base,128KiB,1MiB"},
		Workloads: []riscvmem.WorkloadSpec{
			riscvmem.MustParseWorkloadSpec("transpose:variant=Naive,n=512"),
		},
	}
	postJSON(url+"/v1/sweep", sweepReq, &resp)
	fmt.Println("\nsweep results (transpose/Naive on MangoPi):")
	for _, row := range resp.Results {
		fmt.Printf("  %-16v %10.6fs  speedup %.3f×\n", row.Cell, row.Seconds, row.Speedup)
	}
}

func getJSON(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}

func postJSON(url string, req, dst any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
}
