// Rvvstream: STREAM TRIAD written in RISC-V assembly — scalar RV64IMFD vs
// the RVV vector extension — executed on the simulated Allwinner D1 (XuanTie
// C906, the paper's Mango Pi board).
//
// This is the reproduction's stand-in for the paper's §4.3 footnote: its
// OpenCV comparison ran on "a Linux image that supports vector instructions",
// the only place the study touched RVV. Go has no RVV intrinsics, so the
// kernels here are assembled and emulated by internal/riscv against the very
// same cache/TLB/prefetch/DRAM timing model the Go kernels use.
package main

import (
	"context"
	"fmt"
	"log"

	"riscvmem"
	"riscvmem/internal/riscv"
)

const scalarTriad = `
	# a0=&a, a1=&b, a2=&c, a3=n, fa0=d  —  a[i] = b[i] + d*c[i]
loop:
	beqz    a3, done
	fld     fa1, 0(a1)
	fld     fa2, 0(a2)
	fmadd.d fa3, fa0, fa2, fa1
	fsd     fa3, 0(a0)
	addi    a0, a0, 8
	addi    a1, a1, 8
	addi    a2, a2, 8
	addi    a3, a3, -1
	j       loop
done:
	ecall
`

const vectorTriad = `
	# a0=&a, a1=&b, a2=&c, a3=n, fa0=d  —  strip-mined RVV triad
loop:
	beqz      a3, done
	vsetvli   t0, a3, e64, m1
	vle64.v   v1, (a1)
	vle64.v   v2, (a2)
	vfmacc.vf v1, fa0, v2     # v1 = b + d*c
	vse64.v   v1, (a0)
	slli      t1, t0, 3
	add       a0, a0, t1
	add       a1, a1, t1
	add       a2, a2, t1
	sub       a3, a3, t0
	j         loop
done:
	ecall
`

// triadWorkload wraps one assembled triad as a custom Workload: the runner
// supplies the pooled MangoPi machine, the emulator charges every access to
// its timing model, and the unified Result carries the bandwidth. checksum
// and instrs report back through pointers.
func triadWorkload(name, src string, n int, checksum *float64, instrs *uint64) riscvmem.Workload {
	prog, err := riscv.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	return riscvmem.WorkloadFunc(name, func(ctx context.Context, m *riscvmem.Machine) (riscvmem.Result, error) {
		emu, err := riscv.NewEmulator(prog, m, (3*n+16)*8)
		if err != nil {
			return riscvmem.Result{}, err
		}
		a := emu.MemBase
		b := a + uint64(n*8)
		c := b + uint64(n*8)
		bs := make([]float64, n)
		cs := make([]float64, n)
		for i := range bs {
			bs[i] = float64(i % 31)
			cs[i] = float64(i % 17)
		}
		if err := emu.WriteF64(b, bs); err != nil {
			return riscvmem.Result{}, err
		}
		if err := emu.WriteF64(c, cs); err != nil {
			return riscvmem.Result{}, err
		}
		emu.X[10], emu.X[11], emu.X[12], emu.X[13] = a, b, c, uint64(n)
		emu.F[10] = 3.0

		res, err := emu.Run(1 << 28)
		if err != nil {
			return riscvmem.Result{}, err
		}
		out, err := emu.ReadF64(a, n)
		if err != nil {
			return riscvmem.Result{}, err
		}
		*checksum = 0
		for i, v := range out {
			if want := bs[i] + 3.0*cs[i]; v != want {
				return riscvmem.Result{}, fmt.Errorf("a[%d] = %v, want %v", i, v, want)
			}
			*checksum += v
		}
		*instrs = emu.Executed
		seconds := res.Seconds(m.Spec())
		bytes := int64(24 * n)
		return riscvmem.Result{
			Cycles:    res.Cycles,
			Seconds:   seconds,
			Bytes:     bytes,
			Bandwidth: riscvmem.BytesPerSec(float64(bytes) / seconds),
		}, nil
	})
}

func main() {
	const n = 1 << 15 // 768 KiB footprint: far beyond the D1's 32 KiB L1
	fmt.Printf("STREAM TRIAD on the simulated XuanTie C906 (Mango Pi), n=%d doubles:\n\n", n)

	// Both triads run as one serial batch on a single pooled machine —
	// Machine.Reset between the jobs restores power-on state, so each
	// measures a cold hierarchy exactly like a fresh machine would.
	var sc, vc float64
	var si, vi uint64
	runner := riscvmem.NewRunner(riscvmem.RunnerOptions{Parallelism: 1})
	results, err := runner.Run(context.Background(), riscvmem.Jobs(
		[]riscvmem.Device{riscvmem.MangoPiD1()},
		[]riscvmem.Workload{
			triadWorkload("triad/scalar", scalarTriad, n, &sc, &si),
			triadWorkload("triad/rvv", vectorTriad, n, &vc, &vi),
		}))
	if err != nil {
		log.Fatal(err)
	}
	sb, vb := results[0].Bandwidth.GBps(), results[1].Bandwidth.GBps()
	fmt.Printf("  scalar RV64IMFD : %7.3f GB/s  (%9d instructions)\n", sb, si)
	fmt.Printf("  RVV e64 (VLEN=128): %5.3f GB/s  (%9d instructions, %.1f× fewer)\n",
		vb, vi, float64(si)/float64(vi))
	fmt.Printf("\n  results verified identical (checksum %.1f == %.1f)\n", sc, vc)
	fmt.Println("\nBoth versions are DRAM-bound on this board — vectorization shrinks")
	fmt.Println("instruction count far more than runtime, the paper's core observation")
	fmt.Println("that these kernels are limited by the memory subsystem, not the core.")
}
