// Package riscvmem is a reproduction of "Case Study for Running Memory-Bound
// Kernels on RISC-V CPUs" (Volokitin et al., PACT 2023) as a Go library.
//
// The paper benchmarks three memory-bound kernels — STREAM, in-place dense
// matrix transposition, and Gaussian blur — on two early RISC-V boards, a
// Raspberry Pi 4 and an Intel Xeon server, asking whether classic memory
// optimization techniques carry over to RISC-V silicon. Since the study is
// inseparable from its hardware, this library ships a deterministic,
// cycle-approximate simulator of all four devices (set-associative caches,
// TLBs, hardware prefetchers, multi-channel DRAM, in-order/out-of-order core
// cost models, an OpenMP-like parallel runtime) and runs functionally
// verified implementations of all the paper's kernel variants against it.
// See DESIGN.md for the full substitution argument.
//
// # Quick start
//
// Workloads are values; a Runner executes device × workload cross-products
// as batches on a pool of reusable simulated machines:
//
//	runner := riscvmem.NewRunner(riscvmem.RunnerOptions{})
//	res, err := runner.RunOne(context.Background(), riscvmem.VisionFive(),
//	    riscvmem.TransposeWorkload(riscvmem.TransposeConfig{
//	        N: 1024, Variant: riscvmem.TransposeBlocking}))
//	// res.Seconds, res.Bandwidth, res.Mem.L1MissRate(), ...
//
//	results, err := runner.Run(context.Background(), riscvmem.Jobs(
//	    riscvmem.Devices(),
//	    []riscvmem.Workload{
//	        riscvmem.BlurWorkload(riscvmem.BlurConfig{W: 640, H: 480, C: 3, F: 19,
//	            Variant: riscvmem.BlurMemory}),
//	    }))
//
// Custom kernels implement the Workload interface (or wrap a function with
// WorkloadFunc) and plug into the same Runner, registry and tools as the
// built-ins — see examples/customdevice. The figure-regeneration Suite
// (NewSuite) sits on top of the same machinery.
//
// Workloads are also addressable as pure data: a WorkloadSpec (kernel name
// + string parameters, grammar "stream:test=TRIAD,elems=65536") builds the
// same Workload values through registered kernel factories, and a Service
// (NewService / NewServiceHandler, served by cmd/simd) executes JSON
// BatchRequest/SweepRequest payloads on a shared memoized runner — the
// library as a daemon; see examples/client.
//
// Every run is bit-for-bit deterministic: times come from the simulated
// clock, never the host's, and batched results are bit-identical to serial
// ones regardless of Runner parallelism.
package riscvmem

import (
	"context"
	"net/http"

	"riscvmem/internal/core"
	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/memostore"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
	"riscvmem/internal/sim"
	"riscvmem/internal/sweep"
	"riscvmem/internal/units"
)

// Device describes a simulated machine (core counts, cache/TLB/prefetch/DRAM
// geometry, cost model). Build custom devices by modifying a preset.
type Device = machine.Spec

// The paper's four devices (§3.1).
var (
	MangoPiD1    = machine.MangoPiD1
	VisionFive   = machine.VisionFive
	RaspberryPi4 = machine.RaspberryPi4
	XeonServer   = machine.XeonServer
)

// Devices returns the paper's four machines in figure order.
func Devices() []Device { return machine.All() }

// DeviceByName looks a preset up by its short name
// ("Xeon", "RaspberryPi4", "VisionFive", "MangoPi").
func DeviceByName(name string) (Device, error) { return machine.ByName(name) }

// Machine is a live simulated device instance; Core is one simulated
// hardware thread inside a parallel region. Use them to write custom kernels
// against the timing model (see examples/customdevice).
//
// # Bulk range APIs
//
// Element accesses can be charged one at a time (F64.Load / F64.Store /
// Core.Touch) or line-granularly in bulk:
//
//   - Core.TouchRange charges n consecutive unit-stride accesses: one fused
//     TLB+L1 lookup per cache line touched instead of per element, with
//     whole-line stretches resolving through the batched miss pipeline
//     (one hierarchy call per run; DESIGN.md §4.1).
//   - Core.TouchSpans charges n interleaved accesses across several element
//     streams (Span) plus fixed per-iteration cycle charges — the shape of
//     real kernel loops (load b[i], load c[i], store a[i], flops).
//   - F64.LoadRange / F64.StoreRange (and the F32 analogues) wrap TouchRange
//     together with the data movement.
//
// Both are defined to be exactly equivalent to the corresponding per-element
// loop: simulated cycles bit for bit, identical cache/TLB/DRAM statistics
// and replacement state. Oracle tests assert this on every device preset.
type (
	Machine = sim.Machine
	Core    = sim.Core
	// Span describes one unit-stride element stream inside a
	// Core.TouchSpans batch.
	Span = sim.Span
)

// NewMachine instantiates a device.
func NewMachine(d Device) (*Machine, error) { return sim.New(d) }

// Schedules for Machine.ParallelFor, mirroring OpenMP.
const (
	Static  = sim.Static
	Dynamic = sim.Dynamic
)

// BytesPerSec is a bandwidth; it formats as "12.34 GB/s".
type BytesPerSec = units.BytesPerSec

// Workload/Runner API: the composable execution layer (internal/run).
//
//   - A Workload is one executable kernel configuration: Name() plus
//     Run(ctx, *Machine) → Result. Built-in kernels are adapted by
//     StreamWorkload / TransposeWorkload / BlurWorkload; custom kernels
//     implement the interface directly or wrap a function with WorkloadFunc.
//   - Result is the one unified outcome type: simulated seconds and cycles,
//     logical bytes and bandwidth, and the full per-level cache/TLB/DRAM
//     summary (Mem), with the §3.3 metrics as methods (SpeedupOver,
//     Utilization).
//   - A Runner executes []Job batches on pooled machines (Machine.Reset
//     instead of re-construction) across host goroutines, with results in
//     job order, context cancellation and progress callbacks. Simulated
//     results are bit-identical to serial fresh-machine runs.
type (
	// Workload is an executable kernel configuration.
	Workload = run.Workload
	// Job pairs a Device with a Workload — one cell of a cross-product.
	Job = run.Job
	// Result is the unified outcome of one workload execution.
	Result = run.Result
	// Runner executes job batches on a pool of reusable machines.
	Runner = run.Runner
	// RunnerOptions configures a Runner (parallelism, progress callback).
	RunnerOptions = run.Options
	// RunnerProgress reports one completed job of a batch.
	RunnerProgress = run.Progress
	// MemSummary is the per-level memory-system counter block carried by
	// Result.Mem and the kernel-specific result types.
	MemSummary = sim.Summary
	// Keyed is the opt-in memoization contract: a Workload that also
	// implements CacheKey() string declares its Result a pure function of
	// (device parameters, key), letting the Runner cache results across
	// batches with singleflight dedup. All built-in workload adapters
	// implement it; custom deterministic workloads should too.
	Keyed = run.Keyed
)

// NewRunner builds a Runner.
func NewRunner(opt RunnerOptions) *Runner { return run.New(opt) }

// Persistent memo store API (internal/memostore): the Runner memoizes
// keyed results in a tiered store — a bounded in-memory LRU over an
// optional on-disk content-addressed tier — so results survive process
// restarts. OpenResultStore builds one; pass it via RunnerOptions.Store
// (or ServiceOptions.Store) and every computed Result is persisted under
// ResultCacheVersion, checksummed, and served back after a restart without
// re-simulating. Disk faults are never errors: corrupt entries are
// quarantined and re-simulated, failed persists are counted and logged.
// cmd/simd exposes the same store via -cache-dir, and the memo tool
// exports/imports/inspects the directory.
type (
	// ResultStore is the tiered memo store interface the Runner caches
	// through.
	ResultStore = memostore.Store
	// ResultTierStats are the per-tier cache counters (memory and disk
	// hits/misses, evictions, corruption, persists).
	ResultTierStats = memostore.Stats
)

// ResultCacheVersion namespaces persisted results: module identity plus the
// simulation model version. A model change that alters golden cycle counts
// bumps it, cleanly orphaning all previously persisted entries.
const ResultCacheVersion = run.CacheVersion

// OpenResultStore builds the standard tiered result store: a bounded
// in-memory LRU (memEntries entries; <= 0 selects the default) over an
// on-disk tier rooted at dir. An empty dir yields a memory-only store.
// logf (optional) receives the disk tier's operational log lines.
func OpenResultStore(dir string, memEntries int, logf func(format string, args ...any)) (ResultStore, error) {
	store, err := run.OpenStore(dir, memEntries, logf)
	if err != nil {
		return nil, err
	}
	return store, nil
}

// Jobs builds the device × workload cross-product, devices outermost.
func Jobs(devices []Device, workloads []Workload) []Job {
	return run.Cross(devices, workloads)
}

// WorkloadFunc wraps a plain function as a named Workload. The machine
// passed to fn is in power-on state; charge accesses through its arrays and
// cores and report a Result from the simulated clock.
func WorkloadFunc(name string, fn func(context.Context, *Machine) (Result, error)) Workload {
	return run.NewFunc(name, fn)
}

// StreamWorkload adapts a STREAM measurement as a Workload.
func StreamWorkload(cfg StreamConfig) Workload { return run.Stream(cfg) }

// TransposeWorkload adapts a transposition run as a Workload.
func TransposeWorkload(cfg TransposeConfig) Workload { return run.Transpose(cfg) }

// BlurWorkload adapts a Gaussian-blur run as a Workload.
func BlurWorkload(cfg BlurConfig) Workload { return run.Blur(cfg) }

// Register adds a workload to the process-wide registry under its Name,
// making custom kernels addressable exactly like the built-ins. It errors
// on nil workloads, empty names and duplicates.
func Register(w Workload) error { return run.Register(w) }

// MustRegister is Register but panics on error; for package init blocks.
func MustRegister(w Workload) { run.MustRegister(w) }

// WorkloadByName returns a registered workload.
func WorkloadByName(name string) (Workload, error) { return run.Lookup(name) }

// RegisteredWorkloads lists registered workload names, sorted.
func RegisteredWorkloads() []string { return run.Names() }

// WorkloadSpec API: workloads as data (internal/run). A WorkloadSpec is a
// kernel name plus string parameters — parseable from the CLI grammar
// ("stream:test=TRIAD,elems=65536", "transpose/Blocking"), marshalable
// to/from JSON, and buildable into a live Workload through the kernel's
// registered spec factory. The built-in kernels derive their memoization
// CacheKey from the spec's canonical string encoding.
type (
	// WorkloadSpec is a workload described as data: kernel + parameters.
	WorkloadSpec = run.WorkloadSpec
	// KernelInfo documents one spec-buildable kernel (name, summary,
	// parameter grammar, variant shorthand key).
	KernelInfo = run.KernelInfo
	// SpecFactory builds a Workload from a parsed WorkloadSpec.
	SpecFactory = run.SpecFactory
)

// ParseWorkloadSpec parses the workload spec grammar
// (kernel[:key=value,...] or kernel/variant) into a WorkloadSpec.
func ParseWorkloadSpec(s string) (WorkloadSpec, error) { return run.ParseWorkloadSpec(s) }

// MustParseWorkloadSpec is ParseWorkloadSpec but panics on error.
func MustParseWorkloadSpec(s string) WorkloadSpec { return run.MustParseWorkloadSpec(s) }

// NewWorkloadFromSpec materializes a spec through its kernel's registered
// factory (falling back to the plain workload registry for custom names).
func NewWorkloadFromSpec(spec WorkloadSpec) (Workload, error) { return run.NewWorkload(spec) }

// ParseWorkload parses and materializes a spec string in one step.
func ParseWorkload(s string) (Workload, error) { return run.ParseWorkload(s) }

// RegisterKernel adds a spec factory to the process-wide kernel registry,
// making a custom kernel addressable as data (CLI grammar, JSON requests)
// exactly like the built-ins.
func RegisterKernel(info KernelInfo, build SpecFactory) error {
	return run.RegisterSpecFactory(info, build)
}

// MustRegisterKernel is RegisterKernel but panics on error.
func MustRegisterKernel(info KernelInfo, build SpecFactory) {
	run.MustRegisterSpecFactory(info, build)
}

// Kernels lists the registered spec-buildable kernels, sorted by name.
func Kernels() []KernelInfo { return run.Kernels() }

// Service API: the transport-agnostic request surface (internal/service) —
// JSON-serializable requests executed on one shared memoized Runner, with
// per-request timeouts and a bounded in-flight admission limit. cmd/simd
// fronts a Service with HTTP; NewServiceHandler exposes the same wire
// protocol for embedding.
type (
	// Service executes Batch and Sweep requests on a shared runner.
	Service = service.Service
	// ServiceOptions configures a Service (runner sharing, admission
	// limit, job limit, timeouts).
	ServiceOptions = service.Options
	// BatchRequest asks for a device × workload cross-product.
	BatchRequest = service.BatchRequest
	// SweepRequest asks for a device-parameter ablation.
	SweepRequest = service.SweepRequest
	// ServiceResponse carries result rows, cache stats and per-job errors.
	ServiceResponse = service.Response
	// ServiceResultRow is one job outcome (plus sweep deltas when
	// applicable).
	ServiceResultRow = service.ResultRow
	// ServiceRequestOptions are the per-request knobs (timeout).
	ServiceRequestOptions = service.RequestOptions
	// ServiceCacheStats reports the shared memo cache around one request.
	ServiceCacheStats = service.CacheStats
	// ServiceDeviceInfo is one device preset as the listing endpoints
	// report it.
	ServiceDeviceInfo = service.DeviceInfo
	// ServiceWorkloadsInfo is the kernel/workload discovery document.
	ServiceWorkloadsInfo = service.WorkloadsInfo
	// ServiceJobRequest submits work asynchronously: exactly one of Batch
	// or Sweep.
	ServiceJobRequest = service.JobRequest
	// ServiceJobStatus is the pollable snapshot of one async job.
	ServiceJobStatus = service.JobStatus
	// ServiceJobState is the async job lifecycle state
	// (queued/running/done/failed/cancelled).
	ServiceJobState = service.JobState
	// ServiceOverloadError wraps overload and rate-limit refusals with a
	// Retry-After hint.
	ServiceOverloadError = service.OverloadError
	// ServiceDrainReport is the outcome of a graceful drain.
	ServiceDrainReport = service.DrainReport
)

// Async job lifecycle states (see ServiceJobState).
const (
	JobQueued    = service.JobQueued
	JobRunning   = service.JobRunning
	JobDone      = service.JobDone
	JobFailed    = service.JobFailed
	JobCancelled = service.JobCancelled
)

// ErrServiceOverloaded is returned (HTTP 429) when a request arrives while
// the service's admission limit is saturated and its wait queue is full.
var ErrServiceOverloaded = service.ErrOverloaded

// ErrServiceRateLimited is returned (HTTP 429) when a client exceeds its
// per-client request rate.
var ErrServiceRateLimited = service.ErrRateLimited

// ErrServiceDraining is returned (HTTP 503) while the service is shutting
// down and no longer admits new work.
var ErrServiceDraining = service.ErrDraining

// ServiceClientID tags ctx with a client identity for per-client rate
// limiting (the HTTP transport uses the X-Client-ID header instead).
func ServiceClientID(ctx context.Context, id string) context.Context {
	return service.WithClientID(ctx, id)
}

// NewService builds a Service.
func NewService(opt ServiceOptions) *Service { return service.New(opt) }

// NewServiceHandler fronts a Service with the simd HTTP wire protocol
// (GET /healthz, /v1/devices, /v1/workloads; POST /v1/batch, /v1/sweep).
func NewServiceHandler(s *Service) http.Handler { return service.NewHandler(s) }

// Sweep API: declarative device-parameter ablations (internal/sweep). Axes
// mutate a base Device — L2 present/size, MSHR count, prefetcher
// distance/ramp, miss overlap, DRAM channels/latency, cache ways/policy —
// and the axis cross-product runs as one memoized batch, with every cell
// reporting speedup and bandwidth ratios against the unmutated base cell.
type (
	// SweepAxis is one named sweep dimension.
	SweepAxis = sweep.Axis
	// SweepConfig describes one sweep: base device, axes, workloads.
	SweepConfig = sweep.Config
	// SweepResults is the outcome: per-cell results with base-relative
	// deltas, and a Table() renderer.
	SweepResults = sweep.Results
)

// ParseSweepAxis compiles one "name=v1,v2,..." axis declaration — the same
// grammar as cmd/sweep's -axis flag (l2=off,128KiB / maxinflight=1,2,4 /
// preframp=on,off / ...; every axis accepts the literal "base").
func ParseSweepAxis(s string) (SweepAxis, error) { return sweep.ParseAxis(s) }

// MustParseSweepAxis is ParseSweepAxis but panics on error.
func MustParseSweepAxis(s string) SweepAxis { return sweep.MustParseAxis(s) }

// RunSweep expands and executes a device-parameter sweep.
func RunSweep(ctx context.Context, cfg SweepConfig) (*SweepResults, error) {
	return sweep.Run(ctx, cfg)
}

// STREAM (§4.1).
type (
	// StreamTest is COPY, SCALE, SUM or TRIAD.
	StreamTest = stream.Test
	// StreamConfig sizes one STREAM measurement.
	StreamConfig = stream.Config
	// StreamMeasurement is the result, with the best bandwidth achieved.
	StreamMeasurement = stream.Measurement
)

// The four STREAM tests.
const (
	StreamCopy  = stream.Copy
	StreamScale = stream.Scale
	StreamSum   = stream.Sum
	StreamTriad = stream.Triad
)

// StreamTests returns all four tests in reporting order.
func StreamTests() []StreamTest { return stream.Tests() }

// RunStream executes one STREAM measurement on a fresh simulated device.
//
// Deprecated: use StreamWorkload with a Runner, which pools machines and
// returns the unified Result type. RunStream remains as a thin wrapper.
func RunStream(d Device, cfg StreamConfig) (StreamMeasurement, error) { return stream.Run(d, cfg) }

// StreamLevels derives the measurable memory levels of a device, sized per
// the paper's method (scale divides only the DRAM working set).
func StreamLevels(d Device, scale int) []stream.Level { return stream.Levels(d, scale) }

// Matrix transposition (§4.2).
type (
	// TransposeVariant is one of the five implementations.
	TransposeVariant = transpose.Variant
	// TransposeConfig sizes one run.
	TransposeConfig = transpose.Config
	// TransposeResult carries the simulated time.
	TransposeResult = transpose.Result
)

// The five transposition variants of Fig. 2.
const (
	TransposeNaive          = transpose.Naive
	TransposeParallel       = transpose.Parallel
	TransposeBlocking       = transpose.Blocking
	TransposeManualBlocking = transpose.ManualBlocking
	TransposeDynamic        = transpose.Dynamic
)

// TransposeVariants returns the five variants in figure order.
func TransposeVariants() []TransposeVariant { return transpose.Variants() }

// RunTranspose executes one transposition variant on a fresh device.
//
// Deprecated: use TransposeWorkload with a Runner, which pools machines and
// returns the unified Result type. RunTranspose remains as a thin wrapper.
func RunTranspose(d Device, cfg TransposeConfig) (TransposeResult, error) {
	return transpose.Run(d, cfg)
}

// Gaussian blur (§4.3).
type (
	// BlurVariant is one of the five implementations.
	BlurVariant = blur.Variant
	// BlurConfig sizes one run.
	BlurConfig = blur.Config
	// BlurResult carries the simulated time.
	BlurResult = blur.Result
)

// The five blur variants of Fig. 6.
const (
	BlurNaive      = blur.Naive
	BlurUnitStride = blur.UnitStride
	BlurOneD       = blur.OneD
	BlurMemory     = blur.Memory
	BlurParallel   = blur.Parallel
)

// BlurVariants returns the five variants in figure order.
func BlurVariants() []BlurVariant { return blur.Variants() }

// RunBlur executes one blur variant on a fresh device.
//
// Deprecated: use BlurWorkload with a Runner, which pools machines and
// returns the unified Result type. RunBlur remains as a thin wrapper.
func RunBlur(d Device, cfg BlurConfig) (BlurResult, error) { return blur.Run(d, cfg) }

// Experiment suite: regenerates the paper's figures.
type (
	// Options configures a Suite (scale, device list, verification).
	Options = core.Options
	// Suite runs the figure experiments, caching STREAM bandwidths.
	Suite = core.Suite
	// Figure row types.
	Fig1Cell = core.Fig1Cell
	Fig2Row  = core.Fig2Row
	Fig3Row  = core.Fig3Row
	Fig6Row  = core.Fig6Row
	Fig7Row  = core.Fig7Row
)

// NewSuite builds an experiment suite.
func NewSuite(opt Options) *Suite { return core.NewSuite(opt) }

// Paper-scale workload constants (§4).
const (
	PaperMatrixSmall = core.PaperMatrixSmall
	PaperMatrixLarge = core.PaperMatrixLarge
	PaperImageW      = core.PaperImageW
	PaperImageH      = core.PaperImageH
	PaperImageC      = core.PaperImageC
	PaperFilter      = core.PaperFilter
)
